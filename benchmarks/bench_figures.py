"""Regenerates Figures 6-13 (misprediction vs code size, per benchmark).

Run:  pytest benchmarks/bench_figures.py --benchmark-only -s
Writes CSV series next to the repository under results/ when -s is on.
"""

import pytest

from repro.experiments import figures
from repro.workloads import BENCHMARK_NAMES


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_figure(benchmark, bench_scale, name):
    points = benchmark.pedantic(
        figures.curve_for,
        args=(name,),
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    figure = figures.FIGURE_NUMBERS[name]
    print(f"\nFigure {figure}: {name}")
    print(f"  {'size':>10s}  misprediction")
    for point in points:
        print(f"  {point.size_factor:10.3f}  {point.misprediction_rate:12.2%}")
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info["points"] = len(points)
    benchmark.extra_info["start_rate"] = points[0].misprediction_rate
    benchmark.extra_info["end_rate"] = points[-1].misprediction_rate
    benchmark.extra_info["end_size_factor"] = points[-1].size_factor
    # Curves start at the original program and never hurt accuracy.
    assert points[0].size_factor == 1.0
    assert points[-1].misprediction_rate <= points[0].misprediction_rate
