"""Regenerates Table 3 (loop / loop-exit machines vs full history).

Run:  pytest benchmarks/bench_table3.py --benchmark-only -s
"""

from repro.experiments import table3


def test_table3(benchmark, bench_scale):
    result = benchmark.pedantic(
        table3.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # "A state machine with 2 states implements exactly the 1 bit
    # history scheme."
    assert result.data["1 bit loop"] == result.data["2 states loop"]
    # Machines may lose accuracy against the full table, never gain.
    for bits in range(1, 9):
        history = result.data[f"{bits} bit loop"]
        machine = result.data[f"{bits + 1} states loop"]
        benchmark.extra_info[f"loss_{bits}bit"] = sum(
            m - h for h, m in zip(history, machine)
        ) / len(history)
