"""Bench smoke: learned-predictor training and batch-inference throughput.

Standalone script (not a pytest-benchmark suite) so CI can run it as a
gate: it times ``fit`` over every default learned config (training
events/s) and frozen-model inference three ways — the sequential
reference ``evaluate``, the single-pass stepper engine
(``evaluate_many(..., batch=False)``) and the columnar LUT kernels
(``evaluate_many``) — verifies all three produce identical results, and
writes the wall-clocks and events/s to a JSON report.  Exits non-zero
on a result mismatch or when either throughput falls below its floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_learn.py \
        --output BENCH_learn.json [--names a,b] [--scale 1] \
        [--repeats 3] [--min-train-eps 5000] [--min-infer-eps 50000]

The tracked metrics (train/infer events per second) append one row to
``BENCH_history.jsonl`` (see ``benchmarks/history.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.learn import LearnedPredictor, default_learned_configs, fit, holdout_trace
from repro.predictors import evaluate, evaluate_many
from repro.workloads import BENCHMARK_NAMES, get_artifacts

SPLIT = 0.5


def results_equal(a, b) -> bool:
    return (
        a.events == b.events
        and a.mispredictions == b.mispredictions
        and a.per_site == b.per_site
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--names", default=None, help="comma-separated benchmarks")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing")
    parser.add_argument(
        "--min-train-eps",
        type=float,
        default=5_000.0,
        help="required training throughput (events/s across all configs)",
    )
    parser.add_argument(
        "--min-infer-eps",
        type=float,
        default=50_000.0,
        help="required batch-inference throughput (events/s)",
    )
    parser.add_argument("--output", default="BENCH_learn.json")
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="perf-history file to append the tracked metrics to "
        "('' disables)",
    )
    args = parser.parse_args(argv)
    names = (
        [n for n in args.names.split(",") if n] if args.names else BENCHMARK_NAMES
    )
    configs = default_learned_configs()

    # Artifacts, columns and holdouts are warmed outside the timed
    # regions; training and inference are what this bench prices.
    traces = {name: get_artifacts(name, scale=args.scale).trace for name in names}
    columns = {name: traces[name].columns() for name in names}
    holdouts = {name: holdout_trace(traces[name], SPLIT) for name in names}
    train_events = sum(int(len(traces[name]) * SPLIT) for name in names) * len(configs)
    infer_events = sum(len(holdouts[name]) for name in names) * len(configs)

    train_seconds = float("inf")
    models: Dict[str, list] = {}
    for _ in range(args.repeats):
        started = time.perf_counter()
        models = {
            name: [fit(columns[name], config, SPLIT) for config in configs]
            for name in names
        }
        train_seconds = min(train_seconds, time.perf_counter() - started)

    def predictors(name: str) -> List[LearnedPredictor]:
        return [LearnedPredictor(model) for model in models[name]]

    sequential_seconds = stepper_seconds = batch_seconds = float("inf")
    mismatches: List[str] = []
    for _ in range(args.repeats):
        started = time.perf_counter()
        sequential = {
            name: [evaluate(p, holdouts[name]) for p in predictors(name)]
            for name in names
        }
        sequential_seconds = min(sequential_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        stepper = {
            name: evaluate_many(predictors(name), holdouts[name], batch=False)
            for name in names
        }
        stepper_seconds = min(stepper_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        batch = {
            name: evaluate_many(predictors(name), holdouts[name])
            for name in names
        }
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

        mismatches = [
            f"{name}/{a.predictor}[{label}]"
            for name in names
            for label, other in (("stepper", stepper), ("batch", batch))
            for a, b in zip(sequential[name], other[name])
            if not results_equal(a, b)
        ]
        if mismatches:
            break

    train_eps = train_events / train_seconds
    infer_eps = infer_events / batch_seconds
    report = {
        "benchmarks": list(names),
        "scale": args.scale,
        "configs": [config.name for config in configs],
        "train": {
            "seconds": train_seconds,
            "events": train_events,
            "events_per_second": train_eps,
        },
        "sequential": {
            "seconds": sequential_seconds,
            "events_per_second": infer_events / sequential_seconds,
        },
        "stepper": {
            "seconds": stepper_seconds,
            "events_per_second": infer_events / stepper_seconds,
        },
        "batch": {
            "seconds": batch_seconds,
            "events_per_second": infer_eps,
        },
        "train_events_per_second": train_eps,
        "infer_events_per_second": infer_eps,
        "min_train_eps": args.min_train_eps,
        "min_infer_eps": args.min_infer_eps,
        "results_identical": not mismatches,
        "mismatches": mismatches,
    }
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2)
        stream.write("\n")
    print(
        f"train {train_seconds:.3f}s ({train_eps:,.0f} ev/s over "
        f"{len(configs)} configs) | infer sequential "
        f"{sequential_seconds:.3f}s vs stepper {stepper_seconds:.3f}s vs "
        f"batch {batch_seconds:.3f}s ({infer_eps:,.0f} ev/s) -> {args.output}"
    )
    if args.history:
        import history

        history.append_row(
            "learn",
            report,
            history_path=args.history,
            context={"benchmarks": list(names), "scale": args.scale},
        )
        print(f"history row appended to {args.history}")

    if mismatches:
        print(f"FAIL: results differ: {', '.join(mismatches)}", file=sys.stderr)
        return 1
    if train_eps < args.min_train_eps:
        print(
            f"FAIL: training throughput {train_eps:,.0f} ev/s below "
            f"required {args.min_train_eps:,.0f}",
            file=sys.stderr,
        )
        return 1
    if infer_eps < args.min_infer_eps:
        print(
            f"FAIL: inference throughput {infer_eps:,.0f} ev/s below "
            f"required {args.min_infer_eps:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
