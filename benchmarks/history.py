"""Perf-history tracker: append bench results, flag regressions.

Every ``bench_*.py`` run appends one schema-versioned row per suite to
``BENCH_history.jsonl`` (one JSON object per line — trivially
appendable, mergeable across CI runs, greppable).  ``check`` mode
compares the newest row of each suite against the median of the
previous rows and fails when any tracked metric regressed by more than
``--threshold`` (default 30%) — the CI gate that turns "the bench
still *ran*" into "the bench is still *fast*".

Usage::

    python benchmarks/history.py append --suite eval BENCH_eval.json
    python benchmarks/history.py append --suite service BENCH_service.json
    python benchmarks/history.py check [--history BENCH_history.jsonl]

The module is import-friendly (``append_row``/``check_history``) so the
bench scripts call it directly instead of shelling out.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

#: Bump when a row's shape changes; check ignores rows from other
#: schema versions instead of misreading them.
SCHEMA_VERSION = 1

DEFAULT_HISTORY = "BENCH_history.jsonl"
DEFAULT_THRESHOLD = 0.30

#: How many previous rows the comparison baseline is the median of.
BASELINE_WINDOW = 5

#: suite -> {metric: direction}.  "higher" means bigger is better (a
#: drop is a regression); "lower" means smaller is better (a rise is a
#: regression).  Metrics absent from a row are simply not compared.
TRACKED: Dict[str, Dict[str, str]] = {
    "eval": {
        "speedup": "higher",
        "events_per_second": "higher",
    },
    "service": {
        "req_per_s": "higher",
        "p95_ms": "lower",
        "scaling_speedup": "higher",
        "trace_overhead_ratio": "higher",
    },
    "learn": {
        "train_events_per_second": "higher",
        "infer_events_per_second": "higher",
    },
}


def _finite_number(value) -> bool:
    """True for real, finite numbers — bools are not measurements."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _row_timestamp(row: dict) -> float:
    timestamp = row.get("timestamp")
    return float(timestamp) if _finite_number(timestamp) else 0.0


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def make_row(suite: str, metrics: Dict[str, float], context: Optional[dict] = None) -> dict:
    """One history row; only tracked metrics are kept.

    Booleans are not measurements and are dropped like any other
    non-numeric value; a NaN/inf value for a tracked metric raises
    ``ValueError`` — appending one would silently poison every later
    baseline median.
    """
    tracked = TRACKED.get(suite, {})
    kept: Dict[str, float] = {}
    for name in tracked:
        if name not in metrics:
            continue
        value = metrics[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value):
            raise ValueError(
                f"non-finite value for tracked metric {suite}.{name}: {value!r}"
            )
        kept[name] = float(value)
    row = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "timestamp": time.time(),
        "metrics": kept,
    }
    if context:
        row["context"] = context
    return row


def append_row(
    suite: str,
    metrics: Dict[str, float],
    history_path: str = DEFAULT_HISTORY,
    context: Optional[dict] = None,
) -> dict:
    """Append one row for *suite* to the history file; returns the row."""
    row = make_row(suite, metrics, context)
    with open(history_path, "a") as stream:
        stream.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_history(history_path: str = DEFAULT_HISTORY) -> List[dict]:
    """Every well-formed current-schema row, in file order.

    Unparseable lines and rows from other schema versions are skipped
    (an interrupted append or an old format must not wedge the gate).
    """
    rows: List[dict] = []
    if not os.path.exists(history_path):
        return rows
    with open(history_path) as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(row, dict)
                and row.get("schema_version") == SCHEMA_VERSION
                and isinstance(row.get("metrics"), dict)
                and row.get("suite") in TRACKED
            ):
                rows.append(row)
    return rows


def check_history(
    history_path: str = DEFAULT_HISTORY,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """``(failures, notes)`` comparing each suite's newest row to baseline.

    The baseline per metric is the **median** of up to
    :data:`BASELINE_WINDOW` immediately preceding rows — robust to a
    single lucky or noisy historical run.  "Latest" and "preceding"
    follow each row's recorded ``timestamp``, not file order: merged or
    concatenated history files (CI artifacts land out of order) must
    not make a stale row masquerade as the current run.  A suite with
    no preceding rows produces a note, never a failure (first run seeds
    the history).
    """
    failures: List[str] = []
    notes: List[str] = []
    by_suite: Dict[str, List[dict]] = {}
    for row in load_history(history_path):
        by_suite.setdefault(row["suite"], []).append(row)
    if not by_suite:
        notes.append(f"{history_path}: no history rows yet")
        return failures, notes

    for suite, rows in sorted(by_suite.items()):
        rows = sorted(rows, key=_row_timestamp)  # stable: ties keep file order
        latest = rows[-1]
        previous = rows[:-1][-BASELINE_WINDOW:]
        if not previous:
            notes.append(f"{suite}: first recorded run, nothing to compare")
            continue
        for metric, direction in sorted(TRACKED[suite].items()):
            current = latest["metrics"].get(metric)
            baseline_values = []
            skipped = 0
            for row in previous:
                value = row["metrics"].get(metric)
                if _finite_number(value):
                    baseline_values.append(value)
                elif value is not None:
                    skipped += 1
            if skipped:
                notes.append(
                    f"{suite}.{metric}: ignored {skipped} non-finite "
                    f"baseline value(s)"
                )
            if current is not None and not _finite_number(current):
                notes.append(
                    f"{suite}.{metric}: latest value {current!r} is not a "
                    f"finite number; comparison skipped"
                )
                continue
            if current is None or not baseline_values:
                continue
            baseline = _median(baseline_values)
            if baseline == 0:
                continue
            if direction == "higher":
                change = (baseline - current) / baseline  # drop fraction
            else:
                change = (current - baseline) / baseline  # rise fraction
            verdict = "REGRESSION" if change > threshold else "ok"
            notes.append(
                f"{suite}.{metric}: latest {current:g} vs median-of-"
                f"{len(baseline_values)} baseline {baseline:g} "
                f"({abs(change):.1%} {'worse' if change > 0 else 'better'}) "
                f"[{verdict}]"
            )
            if change > threshold:
                failures.append(
                    f"{suite}.{metric} regressed {change:.1%} "
                    f"(latest {current:g}, baseline {baseline:g}, "
                    f"threshold {threshold:.0%})"
                )
    return failures, notes


def cmd_append(args: argparse.Namespace) -> int:
    with open(args.report) as stream:
        report = json.load(stream)
    row = append_row(args.suite, report, args.history, context={"source": args.report})
    if not row["metrics"]:
        print(
            f"warning: report {args.report} carries none of the tracked "
            f"metrics for suite {args.suite!r}: "
            f"{sorted(TRACKED.get(args.suite, {}))}",
            file=sys.stderr,
        )
    print(
        f"appended {args.suite} row to {args.history}: "
        + (json.dumps(row["metrics"], sort_keys=True) or "{}")
    )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    failures, notes = check_history(args.history, args.threshold)
    for note in notes:
        print(note)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("append", help="append one bench report as a history row")
    p.add_argument("report", help="bench report JSON (BENCH_eval.json, ...)")
    p.add_argument("--suite", required=True, choices=sorted(TRACKED))
    p.add_argument("--history", default=DEFAULT_HISTORY)
    p.set_defaults(func=cmd_append)

    p = sub.add_parser("check", help="fail on >threshold regressions")
    p.add_argument("--history", default=DEFAULT_HISTORY)
    p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression fraction that fails the gate (default 0.30)",
    )
    p.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
