"""Benchmarks of static baselines and speculative scheduling.

Run:  pytest benchmarks/bench_scheduling.py --benchmark-only -s
"""

from repro.experiments import scheduling, statics


def test_static_baselines(benchmark, bench_scale):
    result = benchmark.pedantic(
        statics.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    bl = result.data["ball-larus"]
    profile = result.data["profile"]
    benchmark.extra_info["mean_ball_larus"] = sum(bl) / len(bl)
    benchmark.extra_info["mean_profile"] = sum(profile) / len(profile)
    assert all(p <= b + 1e-9 for p, b in zip(profile, bl))


def test_speculative_scheduling(benchmark, bench_scale):
    result = benchmark.pedantic(
        scheduling.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    plain = result.data["superblock speedup"]
    replicated = result.data["replicated superblock speedup"]
    benchmark.extra_info["mean_superblock_speedup"] = sum(plain) / len(plain)
    benchmark.extra_info["mean_replicated_speedup"] = sum(replicated) / len(
        replicated
    )
