"""Micro-benchmarks of the pipeline's building blocks.

These time the substrate, not a paper experiment: interpreter
throughput, trace compression, profile construction, machine search
and the replication transform itself.

Run:  pytest benchmarks/bench_components.py --benchmark-only
"""

from repro.ir import BranchSite
from repro.profiling import (
    ProfileData,
    trace_program,
    trace_to_bytes,
)
from repro.replication import apply_replication
from repro.statemachines import best_intra_machine, valid_shapes
from repro.workloads import get_profile, get_program, get_trace


def test_interpreter_throughput(benchmark):
    program = get_program("compress")
    result = benchmark(trace_program, program, (2000, 13579), ())
    trace, run = result
    assert run.steps > 10_000


def test_trace_compression(benchmark):
    trace = get_trace("ghostview", 1)
    blob = benchmark(trace_to_bytes, trace)
    assert len(blob) < len(trace)


def test_profile_construction(benchmark):
    trace = get_trace("predict", 1)
    profile = benchmark(ProfileData.from_trace, trace)
    assert profile.events == len(trace)


def test_machine_search(benchmark):
    profile = get_profile("predict", 1)
    site = max(profile.totals, key=lambda s: profile.executions(s))
    table = profile.local[site]
    scored = benchmark(best_intra_machine, table, 8)
    assert scored.correct >= max(table.total())


def test_shape_enumeration(benchmark):
    valid_shapes.cache_clear()
    shapes = benchmark.pedantic(
        valid_shapes, args=(10, 9), rounds=1, iterations=1
    )
    assert len(shapes) > 50


def test_replication_transform(benchmark, bench_scale):
    from repro.replication import ReplicationPlanner

    program = get_program("ghostview")
    profile = get_profile("ghostview", bench_scale)
    planner = ReplicationPlanner(program, profile, max_states=4)
    selections = [
        (plan.site, plan.best_option(4).scored.machine)
        for plan in planner.improvable_plans()
    ]

    def transform():
        return apply_replication(program, selections, profile)

    report = benchmark(transform)
    assert report.size_factor >= 1.0
