"""Regenerates Table 5 (best achievable misprediction, size ignored).

Run:  pytest benchmarks/bench_table5.py --benchmark-only -s
"""

from repro.experiments import table5


def test_table5(benchmark, bench_scale):
    result = benchmark.pedantic(
        table5.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    profile = result.data["profile"]
    ten = result.data["10 states"]
    benchmark.extra_info["mean_profile"] = sum(profile) / len(profile)
    benchmark.extra_info["mean_10_states"] = sum(ten) / len(ten)
    # Best-per-branch with 10 states must improve on profile overall.
    assert sum(ten) < sum(profile)
