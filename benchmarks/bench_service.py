"""Bench smoke: prediction-service throughput and coalescing.

Standalone script (not a pytest-benchmark suite) so CI can run it as a
gate.  It boots an in-process service on an ephemeral port, then runs
two phases:

1. **Coalesce burst** — N barrier-synchronised clients POST the same
   ``/artifacts`` request for a key the server has never seen, so all
   but the leader must ride the single-flight and the coalesce-hit
   counter provably moves.
2. **Sustained load** — the stock load generator drives the default
   endpoint mix for ``--duration`` seconds against the now-warm cache
   and reports req/s and latency percentiles.

The combined report goes to ``BENCH_service.json`` and the run exits
non-zero when throughput falls below ``--min-rps``, any 5xx is
returned, or no request ever coalesced.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --output BENCH_service.json [--clients 6] [--duration 3] \
        [--min-rps 200] [--benchmark compress]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.service import (
    ServiceClient,
    ServiceConfig,
    run_load,
    shutdown_gracefully,
    start_background,
)

#: seed_offset for the burst phase — outside the range any test or the
#: sustained phase uses, so the server's LRU is guaranteed cold for it.
BURST_SEED_OFFSET = 7321


def _counters(host: str, port: int) -> Dict[str, float]:
    with ServiceClient(host, port, timeout=5.0) as client:
        return dict(client.stats().get("counters", {}))


def coalesce_burst(
    host: str, port: int, benchmark: str, clients: int
) -> dict:
    """Fire *clients* identical cold-key requests at the same instant."""
    before = _counters(host, port)
    barrier = threading.Barrier(clients)
    statuses: List[int] = []
    lock = threading.Lock()

    def worker() -> None:
        with ServiceClient(host, port, timeout=30.0) as client:
            barrier.wait(timeout=10.0)
            status, _ = client.request_raw(
                "POST",
                "/artifacts",
                {"name": benchmark, "scale": 1, "seed_offset": BURST_SEED_OFFSET},
            )
            with lock:
                statuses.append(status)

    threads = [
        threading.Thread(target=worker, name=f"burst-{index}", daemon=True)
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    after = _counters(host, port)

    def delta(counter: str) -> float:
        return after.get(counter, 0) - before.get(counter, 0)

    return {
        "clients": clients,
        "seconds": round(elapsed, 3),
        "statuses": sorted(statuses),
        "computed": delta("service.cache.artifacts.misses"),
        "coalesce_hits": delta("service.coalesce.hits"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--benchmark", default="compress")
    parser.add_argument(
        "--min-rps",
        type=float,
        default=200.0,
        help="fail when sustained req/s falls below this floor",
    )
    args = parser.parse_args(argv)

    # A private artifact cache dir guarantees the burst key is cold —
    # its computation takes tens of milliseconds, so every follower has
    # time to latch onto the leader's flight.
    cache_root = tempfile.mkdtemp(prefix="bench-service-cache-")
    os.environ["REPRO_CACHE_DIR"] = cache_root

    server, _ = start_background(ServiceConfig(host="127.0.0.1", port=0))
    host, port = "127.0.0.1", server.port
    print(f"service on port {port}; burst phase ({args.clients} clients)...")
    try:
        burst = coalesce_burst(host, port, args.benchmark, args.clients)
        print(
            f"burst: {len(burst['statuses'])} identical requests -> "
            f"{burst['computed']:.0f} computation(s), "
            f"{burst['coalesce_hits']:.0f} coalesce hit(s) "
            f"in {burst['seconds']}s"
        )
        print(f"sustained phase ({args.duration}s)...")
        sustained = run_load(
            host,
            port,
            clients=args.clients,
            duration=args.duration,
            benchmark=args.benchmark,
        )
    finally:
        shutdown_gracefully(server)
        shutil.rmtree(cache_root, ignore_errors=True)

    coalesce_hits = burst["coalesce_hits"] + sustained["server"]["coalesce_hits"]
    total_requests = len(burst["statuses"]) + sustained["requests"]
    report = {
        "benchmark": args.benchmark,
        "req_per_s": sustained["req_per_s"],
        "p50_ms": sustained["p50_ms"],
        "p95_ms": sustained["p95_ms"],
        "p99_ms": sustained["p99_ms"],
        "five_xx": sustained["five_xx"]
        + sum(1 for status in burst["statuses"] if status >= 500),
        "coalesce_hits": coalesce_hits,
        "coalesce_hit_rate": round(coalesce_hits / total_requests, 6)
        if total_requests
        else 0.0,
        "min_rps": args.min_rps,
        "burst": burst,
        "sustained": sustained,
    }
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(
        f"sustained {report['req_per_s']} req/s, p50 {report['p50_ms']}ms, "
        f"p99 {report['p99_ms']}ms; coalesce hit rate "
        f"{report['coalesce_hit_rate']} -> {args.output}"
    )

    if report["five_xx"]:
        print(f"FAIL: {report['five_xx']} 5xx response(s)", file=sys.stderr)
        return 1
    if report["req_per_s"] < args.min_rps:
        print(
            f"FAIL: {report['req_per_s']} req/s below required "
            f"{args.min_rps} req/s",
            file=sys.stderr,
        )
        return 1
    if not report["coalesce_hits"]:
        print("FAIL: no request ever coalesced", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
