"""Bench smoke: prediction-service throughput and coalescing.

Standalone script (not a pytest-benchmark suite) so CI can run it as a
gate.  It boots an in-process service on an ephemeral port, then runs
two phases:

1. **Coalesce burst** — N barrier-synchronised clients POST the same
   ``/artifacts`` request for a key the server has never seen, so all
   but the leader must ride the single-flight and the coalesce-hit
   counter provably moves.
2. **Sustained load** — the stock load generator drives the default
   endpoint mix for ``--duration`` seconds against the now-warm cache
   and reports req/s and latency percentiles.
3. **Latency agreement** — a compute-dominated run (cold keys via seed
   jitter, artifacts only) where the server's own ``/metrics`` latency
   histogram must agree with the client-observed p95 within
   ``--agreement-tolerance`` (default 25%).  Cold keys make the
   interpreter—not fixed per-request overhead—the latency, so the two
   views measure the same thing; disagreement means the histogram (or
   the scrape-delta quantile math) is lying.

4. **Fleet scaling curve** — the supervised pre-fork fleet is spawned
   as a subprocess at 1, 2 and 4 workers and driven with
   compute-bound cold keys (artifacts only, wide seed jitter); the
   report records req/s and fleet-merged p95 per worker count plus the
   4-vs-1 speedup.  The speedup gate is CPU-aware: near-linear (≥ 3×
   at 4 workers) is only demanded when the machine actually has ≥ 4
   CPUs; below that the gate relaxes (with a loud note in the report)
   because four processes cannot beat one CPU.  The 4-worker run must
   also return zero 5xx and its fleet-merged ``/metrics`` p95 must
   agree with the client-observed p95 within the same tolerance as
   phase 3 — the exactness claim for cross-worker histogram merging,
   checked under load.

The combined report goes to ``BENCH_service.json`` and the run exits
non-zero when throughput falls below ``--min-rps``, any 5xx is
returned, no request ever coalesced, the server/client p95s disagree,
or the fleet fails its scaling gate.  The tracked metrics also append
one row to ``BENCH_history.jsonl`` (see ``benchmarks/history.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --output BENCH_service.json [--clients 6] [--duration 3] \
        [--min-rps 200] [--benchmark compress] [--skip-scaling]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service import (
    ServiceClient,
    ServiceConfig,
    run_load,
    shutdown_gracefully,
    start_background,
)

#: seed_offset for the burst phase — outside the range any test or the
#: sustained phase uses, so the server's LRU is guaranteed cold for it.
BURST_SEED_OFFSET = 7321

#: seed_offset base for the predict-batch phase — disjoint from every
#: other phase so the first pass is provably cold, the replay warm.
BATCH_SEED_BASE = 9_000

#: seed_offset base + jitter for the agreement phase — far from both
#: the burst key and the sustained phase, and wide enough that nearly
#: every request computes.
AGREEMENT_SEED_BASE = 100_000
AGREEMENT_SEED_JITTER = 50_000

#: agreement phase is skipped (not failed) below this many completed
#: requests — quantiles over a handful of samples are noise.
AGREEMENT_MIN_REQUESTS = 50

#: fleet sizes the scaling phase measures, in order; the first is the
#: baseline the speedup is computed against.
SCALING_WORKER_COUNTS = (1, 2, 4)

#: seed_offset base for the trace-overhead phase — disjoint from every
#: other phase's key range.
TRACE_SEED_BASE = 3_000_000

#: The always-on flight recorder may cost at most 5% of warm-path
#: throughput: req/s(tracing on) / req/s(tracing off) must stay above.
TRACE_OVERHEAD_MIN_RATIO = 0.95

#: Alternating measurement rounds in the trace-overhead phase (each
#: round boots one traced and one untraced server).
TRACE_OVERHEAD_ROUNDS = 3

#: seed_offset layout for the scaling phase: far above every other
#: phase, strided per run so no two worker counts share a key.
SCALING_SEED_BASE = 1_000_000
SCALING_SEED_STRIDE = 200_000
SCALING_SEED_JITTER = 50_000


def required_speedup(cpu_count: int) -> float:
    """The 4-vs-1-worker speedup floor this machine can honestly owe.

    Near-linear scaling (≥ 3× at 4 workers) is only physically possible
    with ≥ 4 CPUs; on smaller boxes the gate degrades to "the fleet
    must not collapse" so the bench stays runnable everywhere while CI
    hardware enforces the real bar.
    """
    if cpu_count >= 4:
        return 3.0
    if cpu_count >= 2:
        return 1.2
    return 0.5


def scaling_curve(
    benchmark: str, clients: int, duration: float, tolerance: float
) -> dict:
    """Throughput at each fleet size, with compute-bound cold keys.

    Every fleet is a *subprocess* (this process runs client threads —
    it must never fork a fleet itself); cold keys force real
    computation so throughput scales with worker processes, not with
    thread scheduling inside one GIL.
    """
    from repro.service.supervisor import spawn_fleet

    cpu_count = os.cpu_count() or 1
    rows = []
    for index, workers in enumerate(SCALING_WORKER_COUNTS):
        print(f"scaling phase: {workers} worker(s)...")
        handle = spawn_fleet(workers=workers, threads=2)
        try:
            load = run_load(
                handle.host,
                handle.port,
                clients=clients,
                duration=duration,
                mix="artifacts=1",
                benchmark=benchmark,
                seed_offset=SCALING_SEED_BASE + index * SCALING_SEED_STRIDE,
                seed_jitter=SCALING_SEED_JITTER,
            )
        finally:
            handle.stop()
        rows.append(
            {
                "workers": workers,
                "req_per_s": load["req_per_s"],
                "p95_ms": load["p95_ms"],
                "server_p95_ms": load["server"]["latency"].get("p95_ms", 0.0),
                "requests": load["requests"],
                "five_xx": load["five_xx"],
                "transport_errors": load["transport_errors"],
                "agreement": latency_agreement(load, tolerance),
            }
        )
    baseline = rows[0]["req_per_s"] or 1.0
    for row in rows:
        row["speedup"] = round(row["req_per_s"] / baseline, 3)
    required = required_speedup(cpu_count)
    result = {
        "cpu_count": cpu_count,
        "required_speedup": required,
        "worker_counts": rows,
        "speedup": rows[-1]["speedup"],
        "five_xx": sum(row["five_xx"] for row in rows),
    }
    if cpu_count < 4:
        result["note"] = (
            f"only {cpu_count} CPU(s): near-linear scaling is physically "
            f"impossible here, gate relaxed to {required}x (3.0x needs >= 4 CPUs)"
        )
    return result


def _process_tree_cpu_seconds(root_pid: int) -> Optional[float]:
    """Total user+system CPU seconds of *root_pid* and its descendants.

    Reads ``/proc`` directly (utime+stime from ``/proc/<pid>/stat``,
    children from ``/proc/<pid>/task/<pid>/children``); returns ``None``
    where ``/proc`` is unavailable so the caller can fall back to
    wall-clock throughput.
    """
    if not os.path.isdir(f"/proc/{root_pid}"):
        return None
    ticks = 0
    todo = [root_pid]
    while todo:
        pid = todo.pop()
        try:
            with open(f"/proc/{pid}/stat") as stream:
                # field 2 (comm) may contain spaces — split after the
                # closing paren; utime/stime are then fields 11/12
                fields = stream.read().rsplit(")", 1)[1].split()
            ticks += int(fields[11]) + int(fields[12])
            with open(f"/proc/{pid}/task/{pid}/children") as stream:
                todo.extend(int(child) for child in stream.read().split())
        except (OSError, IndexError, ValueError):
            continue
    return ticks / os.sysconf("SC_CLK_TCK")


def traced_path_cost_us(samples: int = 5, iterations: int = 20000) -> float:
    """Directly time the per-request work ``REPRO_TRACE_OFF=1`` skips.

    One iteration is the exact warm-path tracing sequence the server
    runs per request: start a trace, open/close the ``service.request``
    span, end the trace, and feed the flight recorder's tail-sampling
    decision.  A tight loop resolves this ~10us cost to fractions of a
    microsecond — differencing two independently-noisy end-to-end
    throughput numbers cannot (see :func:`trace_overhead`).
    """
    from repro.obs import OBS
    from repro.obs.flight import FlightRecorder

    recorder = FlightRecorder()

    def one_request() -> None:
        trace = OBS.start_trace()
        trace.notes["request_id"] = "bench"
        try:
            with OBS.span(
                "service.request", method="POST", route="/artifacts",
                request_id="bench",
            ):
                pass
        finally:
            recorder.record(
                OBS.end_trace(), 200, "/artifacts", 0.0004,
                request_id="bench", shard=0,
            )

    for _ in range(iterations):  # warm caches/allocator before timing
        one_request()
    timings = []
    for _ in range(max(1, samples)):
        began = time.perf_counter()
        for _ in range(iterations):
            one_request()
        timings.append((time.perf_counter() - began) / iterations * 1e6)
    return statistics.median(timings)


def trace_overhead(
    benchmark: str, clients: int, duration: float, rounds: int = TRACE_OVERHEAD_ROUNDS
) -> dict:
    """Warm-path cost of the always-on flight recorder, on vs off.

    Each measurement spawns a fresh single-worker ``serve`` subprocess —
    with ``--trace-off`` (the ``REPRO_TRACE_OFF=1`` path) or the
    always-on tracing default — and drives the identical warm-key
    workload.  Warm keys make every request an LRU hit, so fixed
    per-request cost — exactly where the tracing layer lives —
    dominates and the comparison is maximally sensitive.

    The **gated** metric is a paired estimate: the tracing tax measured
    directly by :func:`traced_path_cost_us` (the exact code path the
    ``--trace-off`` baseline skips, resolved to sub-microsecond in a
    tight loop) normalised by the measured untraced server CPU per
    request — ``ratio = t_req / (t_req + t_trace)``, the req/s ratio of
    a CPU-bound warm path.  Machine-speed noise moves ``t_req`` and
    ``t_trace`` proportionally, so it cancels in the ratio; on shared
    CI boxes, identical server configs measure 30%+ apart end to end,
    so differencing two such numbers can never police a 5% gate.  The
    end-to-end A/B rounds (alternating on/off order) still run and are
    reported — wall req/s and server-tree CPU per request from
    ``/proc`` — as corroborating data.
    """
    from repro.service.supervisor import spawn_fleet

    def measure(trace_off: bool) -> Tuple[dict, Optional[float]]:
        extra = ["--trace-off"] if trace_off else []
        handle = spawn_fleet(workers=1, threads=2, extra_args=extra)
        try:
            # Warm-up pass: every server must serve its measured window
            # entirely from the LRU.
            run_load(
                handle.host,
                handle.port,
                clients=clients,
                duration=max(0.8, duration / 2),
                benchmark=benchmark,
                seed_offset=TRACE_SEED_BASE,
            )
            cpu_before = _process_tree_cpu_seconds(handle.process.pid)
            load = run_load(
                handle.host,
                handle.port,
                clients=clients,
                duration=duration,
                benchmark=benchmark,
                seed_offset=TRACE_SEED_BASE,
            )
            cpu_after = _process_tree_cpu_seconds(handle.process.pid)
        finally:
            handle.stop()
        cpu_per_req = None
        if cpu_before is not None and cpu_after is not None and load["requests"]:
            cpu_per_req = (cpu_after - cpu_before) / load["requests"]
        return load, cpu_per_req

    rounds = max(1, int(rounds))
    totals = {
        "trace_off": {"req_per_s": 0.0, "requests": 0, "five_xx": 0, "p95_ms": 0.0},
        "trace_on": {"req_per_s": 0.0, "requests": 0, "five_xx": 0, "p95_ms": 0.0},
    }
    round_ratios: List[float] = []
    cpu_us = {"trace_off": [], "trace_on": []}
    for round_index in range(rounds):
        order = (True, False) if round_index % 2 == 0 else (False, True)
        pair: Dict[str, Optional[float]] = {}
        for trace_off in order:
            label = "trace_off" if trace_off else "trace_on"
            load, cpu_per_req = measure(trace_off)
            row = totals[label]
            row["req_per_s"] += load["req_per_s"]
            row["requests"] += load["requests"]
            row["five_xx"] += load["five_xx"]
            row["p95_ms"] = max(row["p95_ms"], load["p95_ms"])
            pair[label] = cpu_per_req if cpu_per_req else None
            if cpu_per_req:
                cpu_us[label].append(round(cpu_per_req * 1e6, 2))
        if pair.get("trace_off") and pair.get("trace_on"):
            round_ratios.append(pair["trace_off"] / pair["trace_on"])
    trace_us = round(traced_path_cost_us(), 3)
    if cpu_us["trace_off"]:
        metric = "paired_cpu_estimate"
        request_us = statistics.median(cpu_us["trace_off"])
    else:
        # /proc unavailable: fall back to the client-observed wall time
        # per request of the untraced runs (inflated by socket RTT, so
        # the estimate errs permissive — still anchored to a real
        # request cost).
        metric = "paired_wall_estimate"
        off = totals["trace_off"]
        # mean client-observed latency: concurrent streams / throughput
        rps = off["req_per_s"] / max(1, rounds)
        request_us = 1e6 * clients / rps if rps else 1e6
    ratio = round(request_us / (request_us + trace_us), 4)
    return {
        "trace_off": totals["trace_off"],
        "trace_on": totals["trace_on"],
        "rounds": rounds,
        "metric": metric,
        "traced_path_us": trace_us,
        "request_us": round(request_us, 2),
        "round_ratios": [round(value, 4) for value in round_ratios],
        "cpu_us_per_request": cpu_us,
        "ratio": ratio,
        "min_ratio": TRACE_OVERHEAD_MIN_RATIO,
        "five_xx": totals["trace_off"]["five_xx"] + totals["trace_on"]["five_xx"],
    }


def latency_agreement(sustained_like: dict, tolerance: float) -> dict:
    """Compare client p95 with the server's ``/metrics``-delta p95."""
    client_p95 = sustained_like["p95_ms"]
    server = sustained_like["server"].get("latency", {})
    server_p95 = server.get("p95_ms", 0.0)
    requests = sustained_like["requests"]
    checked = requests >= AGREEMENT_MIN_REQUESTS and client_p95 > 0
    diff = abs(client_p95 - server_p95) / client_p95 if client_p95 else 0.0
    return {
        "requests": requests,
        "client_p95_ms": client_p95,
        "server_p95_ms": server_p95,
        "relative_difference": round(diff, 4),
        "tolerance": tolerance,
        "checked": checked,
        "agrees": (diff <= tolerance) if checked else True,
    }


def _counters(host: str, port: int) -> Dict[str, float]:
    with ServiceClient(host, port, timeout=5.0) as client:
        return dict(client.stats().get("counters", {}))


def coalesce_burst(
    host: str, port: int, benchmark: str, clients: int
) -> dict:
    """Fire *clients* identical cold-key requests at the same instant."""
    before = _counters(host, port)
    barrier = threading.Barrier(clients)
    statuses: List[int] = []
    lock = threading.Lock()

    def worker() -> None:
        with ServiceClient(host, port, timeout=30.0) as client:
            barrier.wait(timeout=10.0)
            status, _ = client.request_raw(
                "POST",
                "/artifacts",
                {"name": benchmark, "scale": 1, "seed_offset": BURST_SEED_OFFSET},
            )
            with lock:
                statuses.append(status)

    threads = [
        threading.Thread(target=worker, name=f"burst-{index}", daemon=True)
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    after = _counters(host, port)

    def delta(counter: str) -> float:
        return after.get(counter, 0) - before.get(counter, 0)

    return {
        "clients": clients,
        "seconds": round(elapsed, 3),
        "statuses": sorted(statuses),
        "computed": delta("service.cache.artifacts.misses"),
        "coalesce_hits": delta("service.coalesce.hits"),
    }


def predict_batch(host: str, port: int, benchmark: str, count: int = 8) -> dict:
    """Cold batch then warm replay over one keep-alive connection.

    Exercises :meth:`ServiceClient.predict_many` end to end: the replay
    of an identical batch must come back entirely from the LRU.
    """
    keys = [
        {"name": benchmark, "predictor": "profile", "seed_offset": BATCH_SEED_BASE + i}
        for i in range(count)
    ]
    with ServiceClient(host, port, timeout=120.0) as client:
        started = time.perf_counter()
        client.predict_many(keys)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = client.predict_many(keys)
        warm_seconds = time.perf_counter() - started
    return {
        "keys": count,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_lru": sum(1 for payload in warm if payload.get("source") == "lru"),
        "speedup": round(cold_seconds / warm_seconds, 1) if warm_seconds else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--benchmark", default="compress")
    parser.add_argument(
        "--min-rps",
        type=float,
        default=200.0,
        help="fail when sustained req/s falls below this floor",
    )
    parser.add_argument(
        "--agreement-tolerance",
        type=float,
        default=0.25,
        help="max relative difference between client p95 and the "
        "server's /metrics-delta p95 in the agreement phase",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="perf-history file to append the tracked metrics to "
        "('' disables)",
    )
    parser.add_argument(
        "--skip-scaling",
        action="store_true",
        help="skip the fleet scaling phase (quick single-process runs)",
    )
    args = parser.parse_args(argv)

    # A private artifact cache dir guarantees the burst key is cold —
    # its computation takes tens of milliseconds, so every follower has
    # time to latch onto the leader's flight.
    cache_root = tempfile.mkdtemp(prefix="bench-service-cache-")
    os.environ["REPRO_CACHE_DIR"] = cache_root

    server, _ = start_background(ServiceConfig(host="127.0.0.1", port=0))
    host, port = "127.0.0.1", server.port
    print(f"service on port {port}; burst phase ({args.clients} clients)...")
    try:
        burst = coalesce_burst(host, port, args.benchmark, args.clients)
        print(
            f"burst: {len(burst['statuses'])} identical requests -> "
            f"{burst['computed']:.0f} computation(s), "
            f"{burst['coalesce_hits']:.0f} coalesce hit(s) "
            f"in {burst['seconds']}s"
        )
        print("predict-batch phase (predict_many: cold batch + warm replay)...")
        batch = predict_batch(host, port, args.benchmark)
        print(
            f"batch: {batch['keys']} keys cold in {batch['cold_seconds']}s, "
            f"warm replay in {batch['warm_seconds']}s "
            f"({batch['warm_lru']} lru hit(s))"
        )
        print(f"sustained phase ({args.duration}s)...")
        sustained = run_load(
            host,
            port,
            clients=args.clients,
            duration=args.duration,
            benchmark=args.benchmark,
        )
        print("latency-agreement phase (cold keys, compute-dominated)...")
        agreement_load = run_load(
            host,
            port,
            clients=args.clients,
            duration=max(args.duration, 3.0),
            mix="artifacts=1",
            benchmark=args.benchmark,
            seed_offset=AGREEMENT_SEED_BASE,
            seed_jitter=AGREEMENT_SEED_JITTER,
        )
        scaling = None
        if not args.skip_scaling:
            # Fleets run as subprocesses; they inherit REPRO_CACHE_DIR,
            # so cold keys stay cold inside the same private cache.
            scaling = scaling_curve(
                args.benchmark,
                args.clients,
                max(args.duration, 3.0),
                args.agreement_tolerance,
            )
        print("trace-overhead phase (flight recorder on vs REPRO_TRACE_OFF)...")
        overhead = trace_overhead(
            args.benchmark, args.clients, max(args.duration, 2.0)
        )
    finally:
        shutdown_gracefully(server)
        shutil.rmtree(cache_root, ignore_errors=True)

    coalesce_hits = burst["coalesce_hits"] + sustained["server"]["coalesce_hits"]
    total_requests = len(burst["statuses"]) + sustained["requests"]
    agreement = latency_agreement(agreement_load, args.agreement_tolerance)
    report = {
        "benchmark": args.benchmark,
        "req_per_s": sustained["req_per_s"],
        "p50_ms": sustained["p50_ms"],
        "p95_ms": sustained["p95_ms"],
        "p99_ms": sustained["p99_ms"],
        "five_xx": sustained["five_xx"]
        + agreement_load["five_xx"]
        + sum(1 for status in burst["statuses"] if status >= 500),
        "coalesce_hits": coalesce_hits,
        "coalesce_hit_rate": round(coalesce_hits / total_requests, 6)
        if total_requests
        else 0.0,
        "min_rps": args.min_rps,
        "burst": burst,
        "predict_batch": batch,
        "sustained": sustained,
        "agreement": agreement,
        "trace_overhead": overhead,
        # top-level so history.py tracks the ratio across commits
        "trace_overhead_ratio": overhead["ratio"],
    }
    report["five_xx"] += overhead["five_xx"]
    if scaling is not None:
        report["five_xx"] += scaling["five_xx"]
        report["scaling"] = scaling
        # top-level so history.py can track the speedup as a metric
        report["scaling_speedup"] = scaling["speedup"]
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(
        f"sustained {report['req_per_s']} req/s, p50 {report['p50_ms']}ms, "
        f"p99 {report['p99_ms']}ms; coalesce hit rate "
        f"{report['coalesce_hit_rate']} -> {args.output}"
    )
    print(
        f"agreement: client p95 {agreement['client_p95_ms']}ms vs server "
        f"p95 {agreement['server_p95_ms']}ms over {agreement['requests']} "
        f"request(s) ({agreement['relative_difference']:.1%} apart, "
        f"tolerance {agreement['tolerance']:.0%}"
        + ("" if agreement["checked"] else ", too few samples — skipped")
        + ")"
    )
    if scaling is not None:
        curve = ", ".join(
            f"{row['workers']}w: {row['req_per_s']} req/s "
            f"(x{row['speedup']}, p95 {row['p95_ms']}ms)"
            for row in scaling["worker_counts"]
        )
        print(
            f"scaling ({scaling['cpu_count']} CPU(s), gate "
            f"{scaling['required_speedup']}x): {curve}"
        )
        if "note" in scaling:
            print(f"note: {scaling['note']}")
    rounds = overhead["rounds"]
    print(
        f"trace overhead ({overhead['metric']}): ratio {overhead['ratio']}, "
        f"gate >= {overhead['min_ratio']} — traced path "
        f"{overhead['traced_path_us']}us on a {overhead['request_us']}us "
        f"request; A/B wall {overhead['trace_on']['req_per_s'] / rounds:.1f} "
        f"req/s traced vs {overhead['trace_off']['req_per_s'] / rounds:.1f} "
        f"untraced ({rounds} alternating round(s), "
        f"cpu ratios {overhead['round_ratios']})"
    )
    if args.history:
        import history

        history.append_row(
            "service",
            report,
            history_path=args.history,
            context={"benchmark": args.benchmark, "clients": args.clients},
        )
        print(f"history row appended to {args.history}")

    if report["five_xx"]:
        print(f"FAIL: {report['five_xx']} 5xx response(s)", file=sys.stderr)
        return 1
    if report["req_per_s"] < args.min_rps:
        print(
            f"FAIL: {report['req_per_s']} req/s below required "
            f"{args.min_rps} req/s",
            file=sys.stderr,
        )
        return 1
    if not report["coalesce_hits"]:
        print("FAIL: no request ever coalesced", file=sys.stderr)
        return 1
    if batch["warm_lru"] != batch["keys"]:
        print(
            f"FAIL: predict_many warm replay served only "
            f"{batch['warm_lru']}/{batch['keys']} key(s) from the LRU",
            file=sys.stderr,
        )
        return 1
    if report["trace_overhead_ratio"] < TRACE_OVERHEAD_MIN_RATIO:
        print(
            f"FAIL: flight recorder costs "
            f"{(1 - report['trace_overhead_ratio']):.1%} of warm req/s "
            f"(ratio {report['trace_overhead_ratio']} below "
            f"{TRACE_OVERHEAD_MIN_RATIO})",
            file=sys.stderr,
        )
        return 1
    if not agreement["agrees"]:
        print(
            f"FAIL: server p95 {agreement['server_p95_ms']}ms disagrees "
            f"with client p95 {agreement['client_p95_ms']}ms by "
            f"{agreement['relative_difference']:.1%} "
            f"(> {agreement['tolerance']:.0%})",
            file=sys.stderr,
        )
        return 1
    if scaling is not None:
        if scaling["speedup"] < scaling["required_speedup"]:
            print(
                f"FAIL: fleet speedup {scaling['speedup']}x at "
                f"{SCALING_WORKER_COUNTS[-1]} workers below required "
                f"{scaling['required_speedup']}x "
                f"({scaling['cpu_count']} CPU(s))",
                file=sys.stderr,
            )
            return 1
        fleet_agreement = scaling["worker_counts"][-1]["agreement"]
        if not fleet_agreement["agrees"]:
            print(
                f"FAIL: fleet-merged p95 "
                f"{fleet_agreement['server_p95_ms']}ms disagrees with "
                f"client p95 {fleet_agreement['client_p95_ms']}ms by "
                f"{fleet_agreement['relative_difference']:.1%} "
                f"(> {fleet_agreement['tolerance']:.0%})",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
