"""Bench smoke: columnar batch engine vs the PR-2 stepper engine.

Standalone script (not a pytest-benchmark suite) so CI can run it as a
gate: it times table1's eight-strategy predictor set per benchmark
three ways — the legacy path (one `evaluate` call — one trace scan —
per predictor), the PR-2 single-pass stepper engine
(`evaluate_many(..., batch=False)`, the gated baseline) and the
columnar batch-kernel engine (`evaluate_many`) — verifies all three
produce identical results, and writes the wall-clocks, events/sec and
speedups to a JSON report.  Exits non-zero when the batch engine's
speedup over the stepper engine falls below the threshold.

It also gates the observability layer: the single-pass region is timed
once with span recording disabled (the default) and once enabled, and
the run fails when the obs-disabled hot path is more than
``--max-obs-overhead`` slower than the enabled measurement implies.
(The enabled run is a superset of the disabled run's work, so the
enabled/disabled ratio bounds the instrumentation cost from above.)

Usage::

    PYTHONPATH=src python benchmarks/bench_eval_smoke.py \
        --output BENCH_eval.json [--names a,b] [--scale 1] \
        [--repeats 3] [--min-speedup 10.0] [--max-obs-overhead 0.05]

The tracked metrics (speedup, events/s) also append one row to
``BENCH_history.jsonl`` (see ``benchmarks/history.py``).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Dict, List

from repro.obs import OBS
from repro.predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    evaluate,
    evaluate_many,
    two_level_4k,
)
from repro.workloads import BENCHMARK_NAMES, get_artifacts, get_profile


def predictor_set(profile):
    """Table 1's eight strategies (see repro.experiments.table1)."""
    return [
        LastDirection(),
        SaturatingCounter(2),
        two_level_4k(),
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    ]


def results_equal(a, b) -> bool:
    return (
        a.events == b.events
        and a.mispredictions == b.mispredictions
        and a.per_site == b.per_site
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--names", default=None, help="comma-separated benchmarks")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required batch-engine speedup over the stepper engine",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="maximum allowed fractional slowdown of the engine hot path "
        "with span recording enabled (bounds the obs-disabled overhead)",
    )
    parser.add_argument("--output", default="BENCH_eval.json")
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="perf-history file to append the tracked metrics to "
        "('' disables)",
    )
    args = parser.parse_args(argv)
    names = (
        [n for n in args.names.split(",") if n] if args.names else BENCHMARK_NAMES
    )

    # Warm every artifact — and build the predictor sets — outside the
    # timed regions: profile marginalization is identical setup work
    # for all three engines and would only dilute the measured ratios.
    # Reuse across passes is safe: every evaluation path resets
    # predictor state first and the batch kernels never mutate it.
    profiles = {name: get_profile(name, args.scale) for name in names}
    traces = {name: get_artifacts(name, scale=args.scale).trace for name in names}
    predictors = {name: predictor_set(profiles[name]) for name in names}
    events = sum(len(traces[name]) for name in names)
    n_predictors = len(predictors[names[0]])

    legacy_seconds = stepper_seconds = batch_seconds = float("inf")
    mismatches: List[str] = []
    for _ in range(args.repeats):
        started = time.perf_counter()
        legacy: Dict[str, list] = {
            name: [evaluate(p, traces[name]) for p in predictors[name]]
            for name in names
        }
        legacy_seconds = min(legacy_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        stepper: Dict[str, list] = {
            name: evaluate_many(predictors[name], traces[name], batch=False)
            for name in names
        }
        stepper_seconds = min(stepper_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        batch: Dict[str, list] = {
            name: evaluate_many(predictors[name], traces[name])
            for name in names
        }
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

        mismatches = [
            f"{name}/{a.predictor}[{label}]"
            for name in names
            for label, other in (("stepper", stepper), ("batch", batch))
            for a, b in zip(legacy[name], other[name])
            if not results_equal(a, b)
        ]
        if mismatches:
            break

    # Obs gate: re-time the batch region with span recording on, against
    # a freshly measured recording-off baseline.  The batch pass is only
    # a few milliseconds now, so each sample loops enough inner passes
    # to push the timed region above scheduler/timer noise — otherwise
    # the gate would compare two sub-10ms samples and flap.
    inner = max(1, min(32, round(0.05 / max(batch_seconds, 1e-6))))

    def time_batch_sample(record_spans: bool) -> float:
        # GC pauses land preferentially in the recording samples (spans
        # are the only extra allocations here), which reads as phantom
        # obs overhead; collect up front and hold GC off while timing.
        gc.collect()
        gc.disable()
        if record_spans:
            OBS.enable()
        try:
            started = time.perf_counter()
            for _ in range(inner):
                for name in names:
                    evaluate_many(predictors[name], traces[name])
            return (time.perf_counter() - started) / inner
        finally:
            OBS.disable()
            gc.enable()
            if record_spans:
                OBS.reset()

    # Each round measures both sides back to back (flipping which goes
    # first) and contributes one *paired* enabled/disabled ratio, so
    # clock-frequency drift over the measurement window cancels within
    # the pair.  The gate takes the minimum ratio across rounds: the
    # overhead is a fixed cost, so any one clean round bounds it from
    # above, and a transient stall in a single round cannot flap a ~5%
    # gate the way comparing two independent best-of minima can.
    obs_disabled_seconds = obs_enabled_seconds = float("inf")
    obs_ratio = float("inf")
    for round_index in range(max(args.repeats, 9)):
        pair = {}
        for record_spans in (
            (False, True) if round_index % 2 == 0 else (True, False)
        ):
            pair[record_spans] = time_batch_sample(record_spans)
        obs_enabled_seconds = min(obs_enabled_seconds, pair[True])
        obs_disabled_seconds = min(obs_disabled_seconds, pair[False])
        obs_ratio = min(obs_ratio, pair[True] / pair[False])
    obs_overhead = obs_ratio - 1.0

    speedup = stepper_seconds / batch_seconds
    report = {
        "benchmarks": list(names),
        "scale": args.scale,
        "predictors": n_predictors,
        "events_per_benchmark_pass": events,
        "legacy": {
            "seconds": legacy_seconds,
            "trace_scans": len(names) * n_predictors,
            "events_per_second": events * n_predictors / legacy_seconds,
        },
        "stepper": {
            "seconds": stepper_seconds,
            "trace_scans": len(names),
            "events_per_second": events * n_predictors / stepper_seconds,
        },
        "batch": {
            "seconds": batch_seconds,
            "trace_scans": 0,
            "events_per_second": events * n_predictors / batch_seconds,
        },
        "speedup": speedup,
        "speedup_vs_legacy": legacy_seconds / batch_seconds,
        "events_per_second": events * n_predictors / batch_seconds,
        "min_speedup": args.min_speedup,
        "obs": {
            "enabled_seconds": obs_enabled_seconds,
            "disabled_seconds": obs_disabled_seconds,
            "inner_passes": inner,
            "overhead": obs_overhead,
            "max_overhead": args.max_obs_overhead,
        },
        "results_identical": not mismatches,
        "mismatches": mismatches,
    }
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2)
        stream.write("\n")
    print(
        f"legacy {legacy_seconds:.3f}s vs stepper {stepper_seconds:.3f}s vs "
        f"batch {batch_seconds:.3f}s ({speedup:.2f}x over stepper, "
        f"{events} events x {n_predictors} predictors); "
        f"obs overhead {obs_overhead:+.1%} -> {args.output}"
    )
    if args.history:
        import history

        history.append_row(
            "eval",
            report,
            history_path=args.history,
            context={"benchmarks": list(names), "scale": args.scale},
        )
        print(f"history row appended to {args.history}")

    if mismatches:
        print(f"FAIL: results differ: {', '.join(mismatches)}", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if obs_overhead > args.max_obs_overhead:
        print(
            f"FAIL: obs overhead {obs_overhead:.1%} above allowed "
            f"{args.max_obs_overhead:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
