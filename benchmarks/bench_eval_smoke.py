"""Bench smoke: single-pass engine vs legacy per-predictor evaluation.

Standalone script (not a pytest-benchmark suite) so CI can run it as a
gate: it times table1's eight-strategy predictor set per benchmark the
legacy way (one `evaluate` call — one trace scan — per predictor)
against the single-pass engine (`evaluate_many`), verifies both produce
identical results, and writes the wall-clocks, events/sec and speedup
to a JSON report.  Exits non-zero when the speedup falls below the
threshold.

It also gates the observability layer: the single-pass region is timed
once with span recording disabled (the default) and once enabled, and
the run fails when the obs-disabled hot path is more than
``--max-obs-overhead`` slower than the enabled measurement implies.
(The enabled run is a superset of the disabled run's work, so the
enabled/disabled ratio bounds the instrumentation cost from above.)

Usage::

    PYTHONPATH=src python benchmarks/bench_eval_smoke.py \
        --output BENCH_eval.json [--names a,b] [--scale 1] \
        [--repeats 3] [--min-speedup 2.0] [--max-obs-overhead 0.05]

The tracked metrics (speedup, events/s) also append one row to
``BENCH_history.jsonl`` (see ``benchmarks/history.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.obs import OBS
from repro.predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    evaluate,
    evaluate_many,
    two_level_4k,
)
from repro.workloads import BENCHMARK_NAMES, get_artifacts, get_profile


def predictor_set(profile):
    """Table 1's eight strategies (see repro.experiments.table1)."""
    return [
        LastDirection(),
        SaturatingCounter(2),
        two_level_4k(),
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    ]


def results_equal(a, b) -> bool:
    return (
        a.events == b.events
        and a.mispredictions == b.mispredictions
        and a.per_site == b.per_site
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--names", default=None, help="comma-separated benchmarks")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="maximum allowed fractional slowdown of the engine hot path "
        "with span recording enabled (bounds the obs-disabled overhead)",
    )
    parser.add_argument("--output", default="BENCH_eval.json")
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="perf-history file to append the tracked metrics to "
        "('' disables)",
    )
    args = parser.parse_args(argv)
    names = (
        [n for n in args.names.split(",") if n] if args.names else BENCHMARK_NAMES
    )

    # Warm every artifact outside the timed region.
    profiles = {name: get_profile(name, args.scale) for name in names}
    traces = {name: get_artifacts(name, scale=args.scale).trace for name in names}
    events = sum(len(traces[name]) for name in names)
    n_predictors = len(predictor_set(profiles[names[0]]))

    legacy_seconds = single_pass_seconds = float("inf")
    mismatches: List[str] = []
    for _ in range(args.repeats):
        started = time.perf_counter()
        legacy: Dict[str, list] = {
            name: [
                evaluate(p, traces[name]) for p in predictor_set(profiles[name])
            ]
            for name in names
        }
        legacy_seconds = min(legacy_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        single: Dict[str, list] = {
            name: evaluate_many(predictor_set(profiles[name]), traces[name])
            for name in names
        }
        single_pass_seconds = min(
            single_pass_seconds, time.perf_counter() - started
        )

        mismatches = [
            f"{name}/{a.predictor}"
            for name in names
            for a, b in zip(legacy[name], single[name])
            if not results_equal(a, b)
        ]
        if mismatches:
            break

    # Obs gate: re-time the single-pass region with span recording on.
    obs_enabled_seconds = float("inf")
    OBS.enable()
    try:
        for _ in range(args.repeats):
            started = time.perf_counter()
            for name in names:
                evaluate_many(predictor_set(profiles[name]), traces[name])
            obs_enabled_seconds = min(
                obs_enabled_seconds, time.perf_counter() - started
            )
    finally:
        OBS.disable()
    obs_overhead = obs_enabled_seconds / single_pass_seconds - 1.0

    speedup = legacy_seconds / single_pass_seconds
    report = {
        "benchmarks": list(names),
        "scale": args.scale,
        "predictors": n_predictors,
        "events_per_benchmark_pass": events,
        "legacy": {
            "seconds": legacy_seconds,
            "trace_scans": len(names) * n_predictors,
            "events_per_second": events * n_predictors / legacy_seconds,
        },
        "single_pass": {
            "seconds": single_pass_seconds,
            "trace_scans": len(names),
            "events_per_second": events * n_predictors / single_pass_seconds,
        },
        "speedup": speedup,
        "events_per_second": events * n_predictors / single_pass_seconds,
        "min_speedup": args.min_speedup,
        "obs": {
            "enabled_seconds": obs_enabled_seconds,
            "overhead": obs_overhead,
            "max_overhead": args.max_obs_overhead,
        },
        "results_identical": not mismatches,
        "mismatches": mismatches,
    }
    with open(args.output, "w") as stream:
        json.dump(report, stream, indent=2)
        stream.write("\n")
    print(
        f"legacy {legacy_seconds:.3f}s vs single-pass {single_pass_seconds:.3f}s "
        f"({speedup:.2f}x, {events} events x {n_predictors} predictors); "
        f"obs overhead {obs_overhead:+.1%} -> {args.output}"
    )
    if args.history:
        import history

        history.append_row(
            "eval",
            report,
            history_path=args.history,
            context={"benchmarks": list(names), "scale": args.scale},
        )
        print(f"history row appended to {args.history}")

    if mismatches:
        print(f"FAIL: results differ: {', '.join(mismatches)}", file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if obs_overhead > args.max_obs_overhead:
        print(
            f"FAIL: obs overhead {obs_overhead:.1%} above allowed "
            f"{args.max_obs_overhead:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
