"""Regenerates Table 1 (strategy misprediction rates) and times it.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -s
"""

from repro.experiments import table1


def test_table1(benchmark, bench_scale):
    result = benchmark.pedantic(
        table1.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Record the headline comparison in the benchmark report.
    profile = result.data["profile"]
    combined = result.data["loop-correlation"]
    benchmark.extra_info["mean_profile_misprediction"] = sum(profile) / len(profile)
    benchmark.extra_info["mean_loop_correlation_misprediction"] = sum(combined) / len(
        combined
    )
    assert all(c <= p + 1e-9 for p, c in zip(profile, combined))
