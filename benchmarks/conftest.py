"""Shared benchmark configuration.

``--bench-scale`` controls trace length (≈ scale × 10k branches per
workload); the default keeps a full `pytest benchmarks/` run around a
minute of pure Python.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Benchmark timings must start from a cold artifact cache: point
    the disk cache at a fresh session-temporary directory."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        type=int,
        default=1,
        help="trace scale for experiment benchmarks",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")
