"""Shared benchmark configuration.

``--bench-scale`` controls trace length (≈ scale × 10k branches per
workload); the default keeps a full `pytest benchmarks/` run around a
minute of pure Python.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        type=int,
        default=1,
        help="trace scale for experiment benchmarks",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")
