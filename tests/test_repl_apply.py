"""apply_replication tests: plans realised end to end, with cascading."""

from repro.ir import BranchSite
from repro.interp import run_program
from repro.ir import validate_program
from repro.profiling import ProfileData, trace_program
from repro.replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
)
from repro.statemachines import best_intra_machine, best_loop_exit_machine


def profile_of(program, args):
    trace, _ = trace_program(program.copy(), args)
    return ProfileData.from_trace(trace)


class TestSingleSelection:
    def test_report_fields(self, alternating_loop):
        profile = profile_of(alternating_loop, [100])
        site = BranchSite("main", "body")
        scored = best_intra_machine(profile.local[site], 2)
        report = apply_replication(alternating_loop, [(site, scored.machine)], profile)
        assert report.size_factor > 1.0
        assert len(report.loop_results) == 1
        assert report.tail_results == []
        validate_program(report.program)

    def test_input_program_untouched(self, alternating_loop):
        size = alternating_loop.size()
        profile = profile_of(alternating_loop, [100])
        site = BranchSite("main", "body")
        scored = best_intra_machine(profile.local[site], 2)
        apply_replication(alternating_loop, [(site, scored.machine)], profile)
        assert alternating_loop.size() == size
        assert alternating_loop.main_function().block("body").branch.predict is None

    def test_measured_rate_matches_machine_score(self, alternating_loop):
        profile = profile_of(alternating_loop, [100])
        site = BranchSite("main", "body")
        scored = best_intra_machine(profile.local[site], 2)
        report = apply_replication(alternating_loop, [(site, scored.machine)], profile)
        measured = measure_annotated(report.program, [100])
        # The replicated program realises the machine: its mispredictions
        # on the body branch equal the machine's score (± warmup).
        predicted_wrong = scored.mispredictions
        body_wrong = sum(
            wrong
            for s, (_, wrong) in measured.per_site.items()
            if s.block.startswith("body")
        )
        assert abs(body_wrong - predicted_wrong) <= 9


class TestCascading:
    def test_two_branches_same_loop_multiply(self):
        from repro.ir import parse_program

        # Two alternating branches in the same loop (periods 2 and 4).
        program = parse_program(
            """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? first : done
first:
  p2 = mod i, 2
  br eq p2, 0 ? a : b
a:
  acc = add acc, 1
  jump second
b:
  acc = add acc, 2
  jump second
second:
  p4 = mod i, 4
  br lt p4, 2 ? c : d
c:
  acc = add acc, 10
  jump cont
d:
  acc = add acc, 20
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  ret acc
}
"""
        )
        profile = profile_of(program, [64])
        first = BranchSite("main", "first")
        second = BranchSite("main", "second")
        m_first = best_intra_machine(profile.local[first], 2)
        m_second = best_intra_machine(profile.local[second], 4)
        assert m_first.machine.n_states == 2
        assert m_second.machine.n_states >= 3
        expected = run_program(program.copy(), [64]).value
        report = apply_replication(
            program, [(first, m_first.machine), (second, m_second.machine)], profile
        )
        validate_program(report.program)
        assert run_program(report.program, [64]).value == expected
        # The second machine is applied to all surviving copies the
        # first transform produced in ONE combined transform (they are
        # the same static branch and share the machine): 2 transforms.
        assert len(report.loop_results) == 2
        # Size multiplied: the loop was copied 2 x 4 times.
        assert report.size_factor > 4
        measured = measure_annotated(report.program, [64])
        baseline = measure_annotated(
            apply_replication(program, [], profile).program, [64]
        )
        assert measured.mispredictions < baseline.mispredictions / 2

    def test_inner_improvement_after_outer(self, fixed_trip_loop):
        profile = profile_of(fixed_trip_loop, [40])
        inner = BranchSite("main", "inner_head")
        inner_machine = best_loop_exit_machine(
            profile.local[inner], 5, exit_on_taken=False
        )
        report = apply_replication(
            fixed_trip_loop, [(inner, inner_machine.machine)], profile
        )
        measured = measure_annotated(report.program, [40])
        baseline = measure_annotated(
            apply_replication(fixed_trip_loop, [], profile).program, [40]
        )
        assert measured.mispredictions < baseline.mispredictions


class TestPlannerDriven:
    def test_apply_best_plan_of_each_workload_program(self, correlated_branches):
        profile = profile_of(correlated_branches, [100])
        planner = ReplicationPlanner(correlated_branches, profile, max_states=4)
        plans = planner.improvable_plans()
        assert plans
        selections = []
        for plan in plans:
            option = plan.best_option(4)
            selections.append((plan.site, option.scored.machine))
        expected = run_program(correlated_branches.copy(), [100]).value
        report = apply_replication(correlated_branches, selections, profile)
        validate_program(report.program)
        assert run_program(report.program, [100]).value == expected
        measured = measure_annotated(report.program, [100])
        baseline = measure_annotated(
            apply_replication(correlated_branches, [], profile).program, [100]
        )
        assert measured.misprediction_rate < baseline.misprediction_rate
