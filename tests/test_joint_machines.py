"""Joint loop machine tests (the Further Work extension)."""

import pytest

from repro.interp import run_program
from repro.ir import BranchSite, parse_program, validate_program
from repro.profiling import PatternTable, ProfileData, trace_program
from repro.replication import (
    annotate_profile_predictions,
    collect_joint_tables,
    loop_membership,
    measure_annotated,
    plan_joint_machines,
    replicate_loop_joint,
)
from repro.statemachines import best_intra_machine, best_joint_machine

TWO_ALTERNATORS = """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? first : done
first:
  p2 = mod i, 2
  br eq p2, 0 ? a : b
a:
  acc = add acc, 1
  jump second
b:
  acc = add acc, 2
  jump second
second:
  br eq p2, 0 ? c : d
c:
  acc = add acc, 10
  jump cont
d:
  acc = add acc, 20
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  ret acc
}
"""


def program_and_trace(n=64):
    program = parse_program(TWO_ALTERNATORS)
    trace, _ = trace_program(program.copy(), [n])
    return program, trace


class TestJointTables:
    def test_membership(self):
        program, _ = program_and_trace()
        membership = loop_membership(program)
        key = ("main", "loop")
        assert membership[BranchSite("main", "first")] == key
        assert membership[BranchSite("main", "second")] == key
        assert membership[BranchSite("main", "loop")] == key

    def test_joint_history_interleaves(self):
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership, bits=4)
        loop_tables = tables[("main", "loop")]
        # `second` sees a history whose most recent bit is `first`'s
        # outcome in the same iteration: histories correlate perfectly.
        table = loop_tables[BranchSite("main", "second")]
        for pattern, (not_taken, taken) in table.counts.items():
            # Deterministic: each observed history fixes the outcome.
            assert not_taken == 0 or taken == 0

    def test_counts_cover_all_member_events(self):
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        total = sum(
            table.executions()
            for loop_tables in tables.values()
            for table in loop_tables.values()
        )
        assert total == len(trace)  # every branch here is in the loop


class TestJointSearch:
    def test_finds_shared_structure(self):
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], max_states=4)
        # All three branches predicted almost perfectly by one machine.
        assert scored.misprediction_rate < 0.03

    def test_beats_product_at_equal_size(self):
        program, trace = program_and_trace()
        profile = ProfileData.from_trace(trace)
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        joint = best_joint_machine(tables[("main", "loop")], max_states=4)
        # Independent per-branch machines: first and second each need 2
        # states (product: 4 states of loop size) and get the same
        # accuracy only on their own branch; the joint machine handles
        # all members within the same 4-state budget.
        first = best_intra_machine(
            profile.local[BranchSite("main", "first")], 2
        )
        second = best_intra_machine(
            profile.local[BranchSite("main", "second")], 2
        )
        independent_correct = (
            first.correct
            + second.correct
            + max(profile.totals[BranchSite("main", "loop")])
        )
        assert joint.correct >= independent_correct - 5

    def test_per_site_breakdown(self):
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], 4)
        assert set(scored.per_site) == set(tables[("main", "loop")])
        assert sum(c for c, _ in scored.per_site.values()) == scored.correct

    def test_simulation_matches_score(self):
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], 4)
        events = [
            (site, taken)
            for site, taken in trace
            if membership.get(site) == ("main", "loop")
        ]
        correct, total = scored.machine.simulate(events)
        assert total == scored.total
        assert abs(correct - scored.correct) <= 9  # warmup

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            best_joint_machine({}, 4)


class TestJointReplication:
    def test_semantics_preserved(self):
        program, trace = program_and_trace()
        expected = run_program(program.copy(), [64]).value
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], 4)
        work = program.copy()
        replicate_loop_joint(work.main_function(), "loop", scored.machine)
        validate_program(work)
        assert run_program(work, [64]).value == expected

    def test_measured_accuracy(self):
        program, trace = program_and_trace(200)
        profile = ProfileData.from_trace(trace)
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], 4)
        work = program.copy()
        annotate_profile_predictions(work, profile)
        replicate_loop_joint(work.main_function(), "loop", scored.machine)
        measured = measure_annotated(work, [200])
        assert measured.misprediction_rate == pytest.approx(
            scored.misprediction_rate, abs=0.05
        )

    def test_size_single_multiplier(self):
        # A 4-state joint machine costs 4x the loop; two independent
        # machines of 2 states each would also cost 2x2 = 4x, but a
        # THIRD improved branch is free under the joint machine.
        program, trace = program_and_trace()
        membership = loop_membership(program)
        tables = collect_joint_tables(trace, membership)
        scored = best_joint_machine(tables[("main", "loop")], 4)
        work = program.copy()
        before = work.size()
        result = replicate_loop_joint(work.main_function(), "loop", scored.machine)
        assert result.size_after <= before * scored.machine.n_states

    def test_plan_joint_machines(self):
        program, trace = program_and_trace()
        plans = plan_joint_machines(program, trace, max_states=4)
        assert ("main", "loop") in plans
        assert plans[("main", "loop")].misprediction_rate < 0.05
