"""Run-artifact layer tests: single-pass collection, the on-disk cache,
and the process-parallel fan-out."""

import os

import pytest

from repro.interp import run_program
from repro.profiling import collect_path_tables, trace_program, trace_to_bytes
from repro.workloads import (
    artifacts as artifact_store,
    get_profile,
    get_program,
    get_run_steps,
    get_trace,
    get_workload,
)
from repro.workloads.artifacts import (
    cache_stats,
    clear_memory_cache,
    generate_artifacts,
    get_artifacts,
    reset_cache_stats,
)

NAME = "compress"


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private, empty disk cache and a cleared in-memory memo."""
    directory = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    clear_memory_cache()
    reset_cache_stats()
    yield directory
    clear_memory_cache()
    reset_cache_stats()


class TestSinglePass:
    def test_one_interpreter_run_serves_all_three_products(self, fresh_cache):
        get_trace(NAME, 1)
        get_profile(NAME, 1)
        get_run_steps(NAME, 1)
        stats = cache_stats()
        assert stats.interpreter_runs == 1
        assert stats.misses == 1

    def test_distinct_keys_each_run_once(self, fresh_cache):
        get_trace(NAME, 1)
        get_trace(NAME, 1, seed_offset=7)
        get_trace(NAME, 2)
        assert cache_stats().interpreter_runs == 3

    def test_matches_legacy_three_pass_collection(self, fresh_cache):
        artifacts = get_artifacts(NAME, scale=1)
        workload = get_workload(NAME)
        args, input_values = workload.default_args(1)
        program = get_program(NAME)
        legacy_trace, _ = trace_program(program, args, input_values)
        assert list(artifacts.trace.events()) == list(legacy_trace.events())
        assert artifacts.trace.sites == legacy_trace.sites
        assert artifacts.steps == run_program(program, args, input_values).steps
        legacy_tables = collect_path_tables(program, args, input_values, 8)
        assert set(artifacts.path_tables) == set(legacy_tables)
        for site, table in legacy_tables.items():
            assert artifacts.path_tables[site].counts == table.counts

    def test_profile_reuses_artifact_path_tables(self, fresh_cache):
        profile = get_profile(NAME, 1)
        assert profile.path_tables is not None
        assert profile.path_tables is get_artifacts(NAME, scale=1).path_tables


class TestDiskCache:
    def test_warm_process_performs_zero_interpreter_runs(self, fresh_cache):
        get_trace(NAME, 1)
        cold = get_artifacts(NAME, scale=1)
        # Simulate a fresh process: drop the in-memory memo only.
        clear_memory_cache()
        reset_cache_stats()
        warm = get_artifacts(NAME, scale=1)
        get_profile(NAME, 1)
        assert get_run_steps(NAME, 1) == cold.steps
        stats = cache_stats()
        assert stats.interpreter_runs == 0
        assert stats.hits == 1 and stats.misses == 0
        assert list(warm.trace.events()) == list(cold.trace.events())
        assert {s: t.counts for s, t in warm.path_tables.items()} == {
            s: t.counts for s, t in cold.path_tables.items()
        }

    def test_miss_then_hit_counters(self, fresh_cache):
        get_artifacts(NAME, scale=1)
        assert cache_stats().misses == 1
        clear_memory_cache()
        get_artifacts(NAME, scale=1)
        assert cache_stats().hits == 1

    def test_entries_written_atomically_named_with_version(self, fresh_cache):
        get_artifacts(NAME, scale=1)
        entries = sorted(os.listdir(fresh_cache))
        version = artifact_store.FORMAT_VERSION
        assert entries == [
            f"{NAME}-s1-o0-h8-v{version}.aux",
            f"{NAME}-s1-o0-h8-v{version}.trace",
        ]

    def test_version_stamp_invalidates(self, fresh_cache, monkeypatch):
        get_artifacts(NAME, scale=1)
        clear_memory_cache()
        reset_cache_stats()
        monkeypatch.setattr(artifact_store, "FORMAT_VERSION", 99)
        get_artifacts(NAME, scale=1)
        stats = cache_stats()
        assert stats.hits == 0
        assert stats.interpreter_runs == 1

    def test_stale_envelope_version_rejected(self, fresh_cache, monkeypatch):
        # Files written under an old FORMAT_VERSION but renamed to the
        # current stem must be rejected by the payload stamp.
        monkeypatch.setattr(artifact_store, "FORMAT_VERSION", 0)
        get_artifacts(NAME, scale=1)
        old = {name: (fresh_cache / name).read_bytes() for name in os.listdir(fresh_cache)}
        monkeypatch.setattr(artifact_store, "FORMAT_VERSION", 1)
        for name, payload in old.items():
            (fresh_cache / name.replace("-v0.", "-v1.")).write_bytes(payload)
        clear_memory_cache()
        reset_cache_stats()
        get_artifacts(NAME, scale=1)
        assert cache_stats().interpreter_runs == 1

    @pytest.mark.parametrize("suffix", [".trace", ".aux"])
    def test_corrupt_entry_falls_back_to_recompute(self, fresh_cache, suffix):
        cold = get_artifacts(NAME, scale=1)
        for entry in os.listdir(fresh_cache):
            if entry.endswith(suffix):
                path = fresh_cache / entry
                path.write_bytes(b"garbage" + path.read_bytes()[:10])
        clear_memory_cache()
        reset_cache_stats()
        recomputed = get_artifacts(NAME, scale=1)
        stats = cache_stats()
        assert stats.interpreter_runs == 1 and stats.hits == 0
        assert list(recomputed.trace.events()) == list(cold.trace.events())
        assert recomputed.steps == cold.steps

    def test_disabled_cache_still_computes(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert artifact_store.cache_dir() is None
        trace = get_trace(NAME, 1)
        assert len(trace) > 0
        assert artifact_store.disk_cache_entries() == []

    def test_clear_disk_cache(self, fresh_cache):
        get_artifacts(NAME, scale=1)
        assert artifact_store.clear_disk_cache() == 2
        assert artifact_store.disk_cache_entries() == []


class TestParallelFanOut:
    def test_parallel_generation_matches_serial(self, fresh_cache, tmp_path, monkeypatch):
        serial_bytes = {}
        for name in (NAME, "ghostview"):
            artifacts = get_artifacts(name, scale=1)
            serial_bytes[name] = (trace_to_bytes(artifacts.trace), artifacts.steps)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel-cache"))
        clear_memory_cache()
        reset_cache_stats()
        timings = generate_artifacts([(NAME, 1, 0), ("ghostview", 1, 0)], jobs=2)
        assert len(timings) == 2
        # The parent must serve everything from the worker-filled cache.
        assert cache_stats().interpreter_runs == 0
        for name, (blob, steps) in serial_bytes.items():
            artifacts = get_artifacts(name, scale=1)
            assert trace_to_bytes(artifacts.trace) == blob
            assert artifacts.steps == steps

    def test_generate_skips_cached_specs(self, fresh_cache):
        get_artifacts(NAME, scale=1)
        assert generate_artifacts([(NAME, 1, 0)], jobs=4) == []

    def test_serial_fallback_without_disk_cache(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        clear_memory_cache()
        reset_cache_stats()
        timings = generate_artifacts([(NAME, 1, 0)], jobs=8)
        assert len(timings) == 1
        assert cache_stats().interpreter_runs == 1


class TestDiskCacheRaces:
    """The maintenance scanners must tolerate a concurrent writer or
    clearer mutating the directory mid-scan — the service daemon runs
    them from request threads while other threads fill the cache."""

    def test_entries_empty_when_directory_never_existed(self, fresh_cache):
        assert artifact_store.disk_cache_entries() == []
        assert artifact_store.disk_cache_bytes() == 0
        assert artifact_store.clear_disk_cache() == 0

    def test_entries_tolerate_directory_vanishing_mid_scan(
        self, fresh_cache, monkeypatch
    ):
        import shutil

        get_artifacts(NAME)
        assert artifact_store.disk_cache_entries()
        # Simulate the directory being removed between the existence
        # check and the scan: listdir raises on a vanished directory.
        real_listdir = os.listdir

        def vanished(path):
            if str(path) == str(fresh_cache):
                raise FileNotFoundError(path)
            return real_listdir(path)

        monkeypatch.setattr(os, "listdir", vanished)
        assert artifact_store.disk_cache_entries() == []
        assert artifact_store.disk_cache_bytes() == 0
        assert artifact_store.clear_disk_cache() == 0
        monkeypatch.undo()
        shutil.rmtree(fresh_cache)
        assert artifact_store.disk_cache_entries() == []

    def test_bytes_and_clear_tolerate_entries_vanishing_mid_scan(
        self, fresh_cache, monkeypatch
    ):
        get_artifacts(NAME)
        real_entries = artifact_store.disk_cache_entries()
        assert real_entries
        # A concurrent clearer deleted the files after the scan listed
        # them: stat/unlink hit phantoms and must skip, not raise.
        phantoms = real_entries + ["phantom-v1.trace", "phantom-v1.aux"]
        monkeypatch.setattr(
            artifact_store, "disk_cache_entries", lambda: list(phantoms)
        )
        expected = sum(
            os.path.getsize(os.path.join(fresh_cache, entry))
            for entry in real_entries
        )
        assert artifact_store.disk_cache_bytes() == expected
        assert artifact_store.clear_disk_cache() == len(real_entries)
        # Second clear: everything is already gone, still no error.
        assert artifact_store.clear_disk_cache() == 0

    def test_concurrent_writers_and_clearers_never_raise(self, fresh_cache):
        """A writer hammering the cache while a clearer hammers
        clear_disk_cache/disk_cache_bytes: no exception on any side."""
        import threading

        errors = []
        stop = threading.Event()

        def clearer():
            try:
                while not stop.is_set():
                    artifact_store.disk_cache_entries()
                    artifact_store.disk_cache_bytes()
                    artifact_store.clear_disk_cache()
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=clearer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for seed in range(10):
                clear_memory_cache()
                get_artifacts(NAME, seed_offset=seed % 3)
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert not errors
