"""Workload tests: validity, determinism, and branch-behaviour shape."""

import pytest

from repro.cfg import BranchClass, classify_branches
from repro.interp import run_program
from repro.ir import validate_program
from repro.predictors import LoopCorrelationPredictor, ProfilePredictor, evaluate
from repro.profiling import ProfileData, trace_program
from repro.workloads import (
    BENCHMARK_NAMES,
    WORKLOADS,
    get_program,
    get_trace,
    get_workload,
    reference_global_lcg,
)
from repro.workloads.common import add_global_lcg
from repro.ir import ProgramBuilder


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestEveryWorkload:
    def test_program_valid(self, name):
        validate_program(get_workload(name).build())

    def test_deterministic(self, name):
        workload = get_workload(name)
        args, input_values = workload.default_args(1)
        first = run_program(workload.build(), args, input_values)
        second = run_program(workload.build(), args, input_values)
        assert first.value == second.value
        assert first.output == second.output

    def test_trace_scale(self, name):
        trace = get_trace(name, 1)
        # Scale 1 targets roughly 10k branches; allow a broad band.
        assert 2_000 <= len(trace) <= 60_000

    def test_has_loops_and_branches(self, name):
        program = get_program(name)
        infos = classify_branches(program)
        kinds = {info.kind for info in infos.values()}
        assert BranchClass.LOOP_EXIT in kinds

    def test_profile_beats_coin_flip(self, name):
        trace = get_trace(name, 1)
        profile = ProfileData.from_trace(trace)
        result = evaluate(ProfilePredictor(profile), trace)
        assert result.misprediction_rate < 0.5


class TestSuiteShape:
    """The paper's qualitative cross-benchmark findings must hold."""

    def test_loop_correlation_beats_profile_overall(self):
        total_profile = total_combined = total_events = 0
        for name in BENCHMARK_NAMES:
            trace = get_trace(name, 1)
            profile = ProfileData.from_trace(trace)
            total_profile += evaluate(ProfilePredictor(profile), trace).mispredictions
            total_combined += evaluate(
                LoopCorrelationPredictor(profile), trace
            ).mispredictions
            total_events += len(trace)
        # "the misprediction rate can almost be halved"
        assert total_combined < 0.75 * total_profile

    def test_doduc_is_most_predictable(self):
        rates = {}
        for name in BENCHMARK_NAMES:
            trace = get_trace(name, 1)
            profile = ProfileData.from_trace(trace)
            rates[name] = evaluate(ProfilePredictor(profile), trace).misprediction_rate
        assert rates["doduc"] == min(rates.values())

    def test_seed_offset_changes_trace(self):
        base = get_trace("compress", 1)
        other = get_trace("compress", 1, seed_offset=999)
        assert list(base.events()) != list(other.events())

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("quake")


class TestGlobalLcg:
    def test_reference_matches_ir(self):
        pb = ProgramBuilder()
        add_global_lcg(pb)
        fb = pb.function("main", ["seed"])
        fb.call("gseed", ["seed"], void=True)
        for _ in range(5):
            value = fb.call("grand", [])
            fb.output(value)
        fb.ret(0)
        program = pb.build()
        result = run_program(program, [12345])
        host = reference_global_lcg(12345)
        assert result.output == [host() for _ in range(5)]


class TestSeedOffsets:
    """Cross-dataset runs must really perturb every benchmark's seed."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_seed_offset_changes_every_benchmark_trace(self, name):
        base = get_trace(name, 1)
        other = get_trace(name, 1, seed_offset=12345)
        assert list(base.events()) != list(other.events())

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_seeded_args_only_moves_declared_seed(self, name):
        workload = get_workload(name)
        plain, _ = workload.seeded_args(1)
        offset, _ = workload.seeded_args(1, 1000)
        assert plain == tuple(workload.default_args(1)[0])
        diffs = [i for i, (a, b) in enumerate(zip(plain, offset)) if a != b]
        assert diffs == [workload.seed_arg]
        assert offset[workload.seed_arg] == plain[workload.seed_arg] + 1000

    def test_seed_arg_out_of_range_rejected(self):
        from repro.workloads import Workload

        bad = Workload(
            "bad", "", lambda: None, lambda scale: ((1, 2), ()), seed_arg=5
        )
        with pytest.raises(IndexError):
            bad.seeded_args(1, 7)
