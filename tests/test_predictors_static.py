"""Static predictor tests (Smith heuristics + Ball/Larus)."""

from repro.ir import BranchSite, parse_program
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    backward_taken,
    ball_larus,
    evaluate,
    opcode_heuristic,
    static_predictors,
)
from repro.profiling import trace_program


def test_always_taken(alternating_loop):
    trace, _ = trace_program(alternating_loop, [10])
    result = evaluate(AlwaysTaken(), trace)
    # loop: taken 10/11; body: alternates.
    assert 0.2 < result.misprediction_rate < 0.5


def test_always_taken_plus_not_taken_covers_all(alternating_loop):
    trace, _ = trace_program(alternating_loop, [10])
    taken = evaluate(AlwaysTaken(), trace)
    not_taken = evaluate(AlwaysNotTaken(), trace)
    assert taken.mispredictions + not_taken.mispredictions == len(trace)


def test_backward_taken_predicts_loop_branches(alternating_loop):
    predictor = backward_taken(alternating_loop)
    # `loop` branch target `body` comes after `loop` -> forward -> not taken.
    # This layout has the loop branch jumping forward; BTFNT calls it
    # not-taken, which for this program is the exit direction.
    site = BranchSite("main", "loop")
    assert predictor.predict(site) in (True, False)  # deterministic


def test_backward_taken_on_explicit_backedge():
    program = parse_program(
        "func main(n) {\nentry:\n  i = move 0\nbody:\n  i = add i, 1\n"
        "head:\n  br lt i, n ? body : done\ndone:\n  ret i\n}"
    )
    predictor = backward_taken(program)
    # head's taken target (body) appears before head: backward -> taken.
    assert predictor.predict(BranchSite("main", "head")) is True


def test_opcode_heuristic_directions():
    program = parse_program(
        "func main(n) {\nentry:\n  br ne n, 0 ? a : b\n"
        "a:\n  br eq n, 5 ? c : d\nb:\n  ret 0\nc:\n  ret 1\nd:\n  ret 2\n}"
    )
    predictor = opcode_heuristic(program)
    assert predictor.predict(BranchSite("main", "entry")) is True  # ne
    assert predictor.predict(BranchSite("main", "a")) is False  # eq


class TestBallLarus:
    def test_pointer_heuristic(self):
        program = parse_program(
            "func main(p) {\nentry:\n  br.ptr eq p, 0 ? null : ok\n"
            "null:\n  ret 0\nok:\n  ret 1\n}"
        )
        predictor = ball_larus(program)
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_call_heuristic_avoids_call_block(self):
        program = parse_program(
            """
func helper() {
entry:
  ret 0
}

func main(n) {
entry:
  br gt n, 10 ? slow : fast
slow:
  x = call helper()
  jump join
fast:
  y = const 1
  jump join
join:
  ret n
}
"""
        )
        predictor = ball_larus(program)
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_return_heuristic(self):
        program = parse_program(
            "func main(n) {\nentry:\n  br gt n, 99999 ? bail : work\n"
            "bail:\n  ret 0\nwork:\n  m = add n, 1\n  jump out\nout:\n  ret m\n}"
        )
        predictor = ball_larus(program)
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_store_heuristic(self):
        # Compare two registers so the earlier opcode heuristic (which
        # only fires on compares against zero) stays silent.
        program = parse_program(
            "func main(n, m, p) {\nentry:\n  br gt n, m ? writes : clean\n"
            "writes:\n  store p, 7, 0\n  jump join\nclean:\n  x = const 1\n"
            "  jump join\njoin:\n  ret n\n}"
        )
        predictor = ball_larus(program)
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_loop_heuristic_prefers_backedge(self):
        program = parse_program(
            "func main(n) {\nentry:\n  i = move 0\nhead:\n  i = add i, 1\n"
            "  br lt i, n ? head : done\ndone:\n  ret i\n}"
        )
        predictor = ball_larus(program)
        assert predictor.predict(BranchSite("main", "head")) is True

    def test_opcode_zero_compare(self):
        program = parse_program(
            "func main(n, m) {\nentry:\n  br lt n, 0 ? neg : pos\n"
            "neg:\n  x = sub 0, n\n  jump join\npos:\n  x = move n\n  jump join\n"
            "join:\n  ret x\n}"
        )
        predictor = ball_larus(program)
        # lt against 0 -> predicted not taken.
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_guard_heuristic(self):
        program = parse_program(
            "func main(a, b) {\nentry:\n  br ge a, b ? use : skip\n"
            "use:\n  x = sub a, b\n  jump join\nskip:\n  x = const 0\n  jump join\n"
            "join:\n  ret x\n}"
        )
        predictor = ball_larus(program)
        # `use` consumes the branch operands -> predicted taken.
        assert predictor.predict(BranchSite("main", "entry")) is True

    def test_default_when_no_heuristic_matches(self):
        program = parse_program(
            "func main(a, b) {\nentry:\n  br ge a, b ? l : r\n"
            "l:\n  x = const 1\n  jump join\nr:\n  y = const 2\n  jump join\n"
            "join:\n  ret 0\n}"
        )
        predictor = ball_larus(program, default=False)
        assert predictor.predict(BranchSite("main", "entry")) is False

    def test_beats_always_taken_on_workload(self, alternating_loop):
        trace, _ = trace_program(alternating_loop, [100])
        heuristic = evaluate(ball_larus(alternating_loop), trace)
        naive = evaluate(AlwaysNotTaken(), trace)
        assert heuristic.misprediction_rate <= naive.misprediction_rate


def test_static_predictor_suite(alternating_loop):
    predictors = list(static_predictors(alternating_loop))
    assert len(predictors) == 5
    names = {p.name for p in predictors}
    assert "ball-larus" in names and "always-taken" in names
