"""Train-as-a-service contract: POST /train, learned /predict, the
models cache, and the learn.* counters — handler-level, no sockets."""

import json

import pytest

from repro.learn import FORMAT_VERSION, model_from_json
from repro.obs import OBS
from repro.service import handlers
from repro.service.state import ApiError, ServiceConfig, ServiceState

LEARNED = "learned-perceptron-global-8bit"


@pytest.fixture()
def state():
    state = ServiceState(ServiceConfig())
    yield state
    state.close()


def _counter(name):
    return OBS.snapshot().counters.get(name, 0)


def test_train_payload_contract(state):
    before = _counter("learn.train.requests")
    fits_before = _counter("learn.train.fits")
    payload = handlers.handle_train(
        state, {"name": "compress", "predictor": LEARNED}
    )
    assert payload["source"] == "computed"
    assert payload["benchmark"] == "compress"
    assert payload["predictor"] == LEARNED
    assert payload["model_format_version"] == FORMAT_VERSION
    assert payload["train_events"] > 0
    assert payload["sites_learned"] > 0
    holdout = payload["holdout"]
    assert holdout["events"] > 0
    assert 0.0 <= holdout["misprediction_rate"] <= 1.0
    # The embedded document is a valid, loadable model.
    model = model_from_json(json.dumps(payload["model"]))
    assert model.config.name == LEARNED
    assert _counter("learn.train.requests") == before + 1
    assert _counter("learn.train.fits") == fits_before + 1


def test_train_warm_replay_served_from_lru(state):
    body = {"name": "compress", "predictor": LEARNED}
    first = handlers.handle_train(state, dict(body))
    second = handlers.handle_train(state, dict(body))
    assert first["source"] == "computed"
    assert second["source"] == "lru"
    assert second["model"] == first["model"]


def test_train_full_split_omits_holdout(state):
    payload = handlers.handle_train(
        state, {"name": "compress", "predictor": LEARNED, "split": 1.0}
    )
    assert "holdout" not in payload
    assert payload["split"] == 1.0


def test_train_rejects_non_learned_predictor(state):
    with pytest.raises(ApiError) as excinfo:
        handlers.handle_train(state, {"name": "compress", "predictor": "profile"})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_predictor"
    assert LEARNED in excinfo.value.details["available"]


def test_train_rejects_bad_split_and_bad_width(state):
    for split in (0.0, -0.1, 2, True, "half"):
        with pytest.raises(ApiError) as excinfo:
            handlers.handle_train(
                state, {"name": "compress", "predictor": LEARNED, "split": split}
            )
        assert excinfo.value.status == 400
    with pytest.raises(ApiError) as excinfo:
        handlers.handle_train(
            state,
            {"name": "compress", "predictor": "learned-perceptron-global-99bit"},
        )
    assert excinfo.value.status == 400


def test_train_unknown_benchmark_is_404(state):
    with pytest.raises(ApiError) as excinfo:
        handlers.handle_train(state, {"name": "nope", "predictor": LEARNED})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_benchmark"


def test_predict_accepts_learned_names(state):
    payload = handlers.handle_predict(
        state, {"name": "compress", "predictor": LEARNED}
    )
    assert payload["source"] == "computed"
    assert payload["predictor"] == LEARNED
    assert payload["events"] > 0
    assert payload["order_independent"] is False
    assert payload["learned"]["model_format_version"] == FORMAT_VERSION
    assert payload["sites"]
    total = sum(entry["mispredictions"] for entry in payload["sites"])
    assert total == payload["mispredictions"]
    # Warm replay comes from the predictions cache.
    again = handlers.handle_predict(state, {"name": "compress", "predictor": LEARNED})
    assert again["source"] == "lru"


def test_predict_learned_agrees_with_train_holdout(state):
    trained = handlers.handle_train(
        state, {"name": "compress", "predictor": LEARNED}
    )
    predicted = handlers.handle_predict(
        state, {"name": "compress", "predictor": LEARNED}
    )
    assert predicted["events"] == trained["holdout"]["events"]
    assert predicted["mispredictions"] == trained["holdout"]["mispredictions"]


def test_predict_learned_reuses_cached_model(state):
    fits_before = _counter("learn.train.fits")
    handlers.handle_train(state, {"name": "compress", "predictor": LEARNED})
    handlers.handle_predict(state, {"name": "compress", "predictor": LEARNED})
    # train + predict at the default split share one models-cache entry.
    assert _counter("learn.train.fits") == fits_before + 1
    assert len(state.models) == 1


def test_classic_predictors_unaffected(state):
    payload = handlers.handle_predict(
        state, {"name": "compress", "predictor": "profile"}
    )
    assert payload["predictor"] == "profile"
    with pytest.raises(ApiError) as excinfo:
        handlers.handle_predict(
            state, {"name": "compress", "predictor": "no-such-predictor"}
        )
    assert excinfo.value.status == 404


def test_stats_reports_models_cache(state):
    handlers.handle_train(state, {"name": "compress", "predictor": LEARNED})
    stats = handlers.handle_stats(state, None)
    sizes = stats["service"]["cache_sizes"]
    assert sizes["models"] == 1


def test_train_route_registered():
    assert ("POST", "/train") in handlers.ROUTES
    assert "/train" in handlers.KNOWN_PATHS
