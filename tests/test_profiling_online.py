"""Online profiler and profile serialisation tests."""

import pytest

from repro.ir import BranchSite
from repro.profiling import (
    OnlineProfiler,
    ProfileData,
    ProfileFormatError,
    Trace,
    collect_path_tables,
    load_profile,
    profile_from_bytes,
    profile_program,
    profile_to_bytes,
    save_profile,
    trace_program,
)


def profiles_equal(a: ProfileData, b: ProfileData) -> bool:
    if a.totals != b.totals or a.events != b.events:
        return False
    for site in a.totals:
        if a.local[site].counts != b.local[site].counts:
            return False
        if a.global_tables[site].counts != b.global_tables[site].counts:
            return False
    return True


class TestOnlineProfiler:
    def test_matches_batch_profile(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [123])
        batch = ProfileData.from_trace(trace)
        online = OnlineProfiler()
        for site, taken in trace:
            online.record(site, taken)
        assert profiles_equal(batch, online.finish())

    def test_profile_program_one_pass(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [50])
        batch = ProfileData.from_trace(trace)
        streamed, result = profile_program(alternating_loop, [50])
        assert result.value == 75
        assert profiles_equal(batch, streamed)

    def test_custom_depths(self, alternating_loop):
        streamed, _ = profile_program(
            alternating_loop, [30], local_bits=4, global_bits=3
        )
        assert streamed.local_bits == 4
        table = streamed.local[BranchSite("main", "body")]
        assert max(table.counts) < 16

    def test_memory_stays_bounded(self):
        # A long biased stream creates exactly 1-2 live patterns.
        profiler = OnlineProfiler()
        site = BranchSite("f", "b")
        for _ in range(100_000):
            profiler.record(site, True)
        profile = profiler.finish()
        assert len(profile.local[site].counts) <= 10  # warmup patterns only


class TestProfileSerialisation:
    def test_roundtrip(self, correlated_branches):
        trace, _ = trace_program(correlated_branches.copy(), [80])
        profile = ProfileData.from_trace(trace)
        loaded = profile_from_bytes(profile_to_bytes(profile))
        assert profiles_equal(profile, loaded)
        assert loaded.path_tables is None

    def test_roundtrip_with_path_tables(self, correlated_branches):
        trace, _ = trace_program(correlated_branches.copy(), [80])
        profile = ProfileData.from_trace(trace)
        profile.attach_path_tables(
            collect_path_tables(correlated_branches, [80])
        )
        loaded = profile_from_bytes(profile_to_bytes(profile))
        assert loaded.path_tables is not None
        for site, table in profile.path_tables.items():
            assert loaded.path_tables[site].counts == table.counts

    def test_file_roundtrip(self, tmp_path, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [40])
        profile = ProfileData.from_trace(trace)
        path = str(tmp_path / "train.profile")
        save_profile(profile, path)
        assert profiles_equal(profile, load_profile(path))

    def test_bad_magic(self):
        with pytest.raises(ProfileFormatError, match="magic"):
            profile_from_bytes(b"XXXX" + b"junk")

    def test_corrupt_payload(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [10])
        blob = bytearray(profile_to_bytes(ProfileData.from_trace(trace)))
        blob[10] ^= 0xFF
        with pytest.raises(ProfileFormatError):
            profile_from_bytes(bytes(blob))

    def test_loaded_profile_drives_the_planner(self, alternating_loop):
        from repro.replication import ReplicationPlanner

        trace, _ = trace_program(alternating_loop.copy(), [100])
        profile = ProfileData.from_trace(trace)
        loaded = profile_from_bytes(profile_to_bytes(profile))
        planner = ReplicationPlanner(alternating_loop, loaded, max_states=4)
        assert planner.improved_branch_count() >= 1

    def test_empty_profile_roundtrip(self):
        empty = ProfileData.from_trace(Trace())
        loaded = profile_from_bytes(profile_to_bytes(empty))
        assert loaded.totals == {}
        assert loaded.events == 0
