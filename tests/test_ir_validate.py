"""Validator tests: every invariant has a failing example."""

import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    Call,
    Const,
    Function,
    Jump,
    Program,
    Return,
    ValidationError,
    parse_program,
    validate_program,
)


def empty_main() -> Program:
    program = Program()
    function = Function("main")
    function.add_block(BasicBlock("entry", [], Return(None)))
    program.add_function(function)
    return program


def test_valid_program_passes():
    validate_program(empty_main())


def test_missing_entry_function():
    program = Program(main="main")
    function = Function("other")
    function.add_block(BasicBlock("entry", [], Return(None)))
    program.add_function(function)
    with pytest.raises(ValidationError, match="missing entry function"):
        validate_program(program)


def test_block_without_terminator():
    program = empty_main()
    program.function("main").add_block(BasicBlock("hole", [Const("x", 1)]))
    with pytest.raises(ValidationError, match="no terminator"):
        validate_program(program)


def test_jump_to_unknown_block():
    program = empty_main()
    program.function("main").add_block(BasicBlock("bad", [], Jump("ghost")))
    with pytest.raises(ValidationError, match="unknown"):
        validate_program(program)


def test_branch_to_unknown_block():
    program = empty_main()
    program.function("main").add_block(
        BasicBlock("bad", [], Branch("eq", 1, 1, "entry", "ghost"))
    )
    with pytest.raises(ValidationError, match="unknown"):
        validate_program(program)


def test_undefined_register_use():
    program = empty_main()
    block = program.function("main").block("entry")
    block.instrs.append(Const("x", 1))
    block.terminator = Return("never_defined")
    with pytest.raises(ValidationError, match="undefined"):
        validate_program(program)


def test_parameters_count_as_defined():
    program = parse_program("func main(n) {\nentry:\n  ret n\n}")
    validate_program(program)


def test_call_to_unknown_function():
    program = empty_main()
    program.function("main").block("entry").instrs.append(Call("x", "ghost", ()))
    with pytest.raises(ValidationError, match="unknown function"):
        validate_program(program)


def test_call_arity_mismatch():
    program = parse_program(
        "func main() {\nentry:\n  x = call helper(1, 2)\n  ret\n}\n"
        "func helper(a) {\nentry:\n  ret a\n}"
    )
    with pytest.raises(ValidationError, match="expected 1"):
        validate_program(program)


def test_multiple_errors_reported_together():
    program = empty_main()
    function = program.function("main")
    function.add_block(BasicBlock("one", [], Jump("ghost1")))
    function.add_block(BasicBlock("two", [], Jump("ghost2")))
    with pytest.raises(ValidationError) as info:
        validate_program(program)
    assert "ghost1" in str(info.value) and "ghost2" in str(info.value)
