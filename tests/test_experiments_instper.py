"""Fisher/Freudenberger instructions-per-misprediction experiment."""

import pytest

from repro.experiments import instper

NAMES = ["compress", "doduc"]


@pytest.fixture(scope="module")
def result():
    return instper.run(scale=1, names=NAMES)


def test_rows(result):
    assert "profile" in result.rows
    assert "loop-correlation" in result.rows


def test_loop_correlation_stretches_distance(result):
    profile = result.data["profile"]
    combined = result.data["loop-correlation"]
    for p, c in zip(profile, combined):
        assert c >= p - 1e-9


def test_values_positive(result):
    for row in result.rows:
        for value in result.data[row]:
            assert value > 0
