"""Compressed trace file format tests."""

import io

import pytest

from repro.ir import BranchSite
from repro.profiling import (
    Trace,
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_bytes,
    trace_to_bytes,
    trace_program,
)


def test_empty_trace_roundtrip():
    trace = Trace()
    assert list(trace_from_bytes(trace_to_bytes(trace)).events()) == []


def test_roundtrip_preserves_everything():
    trace = Trace()
    for index in range(100):
        trace.record(BranchSite("f", f"b{index % 7}"), index % 3 == 0)
    loaded = trace_from_bytes(trace_to_bytes(trace))
    assert loaded.sites == trace.sites
    assert list(loaded.events()) == list(trace.events())


def test_file_roundtrip(tmp_path, alternating_loop):
    trace, _ = trace_program(alternating_loop, [200])
    path = str(tmp_path / "run.trace")
    save_trace(trace, path)
    loaded = load_trace(path)
    assert list(loaded.events()) == list(trace.events())
    assert loaded.sites == trace.sites


def test_compression_is_effective(alternating_loop):
    # A regular trace must compress far below 1 byte/event raw cost
    # (the paper: 5M branches in about a MB).
    trace, _ = trace_program(alternating_loop, [5000])
    blob = trace_to_bytes(trace)
    assert len(blob) < len(trace) / 4


def test_bad_magic_rejected():
    with pytest.raises(TraceFormatError, match="magic"):
        load_trace(io.BytesIO(b"NOPE" + b"\x00" * 64))


def test_truncated_file_rejected():
    trace = Trace()
    trace.record(BranchSite("f", "a"), True)
    blob = trace_to_bytes(trace)
    with pytest.raises(TraceFormatError):
        trace_from_bytes(blob[: len(blob) - 1])


def test_corrupt_site_reference_rejected():
    # Handcraft a trace, then break the site table by removing a site.
    trace = Trace()
    trace.record(BranchSite("f", "a"), True)
    trace.record(BranchSite("f", "b"), False)
    blob = bytearray(trace_to_bytes(trace))
    # Corrupting the payload should never crash with a raw exception.
    blob[-1] ^= 0xFF
    try:
        trace_from_bytes(bytes(blob))
    except TraceFormatError:
        pass
    except Exception as error:  # noqa: BLE001 - the assertion target
        import zlib

        assert isinstance(error, zlib.error)


def test_sites_with_unusual_labels_roundtrip():
    trace = Trace()
    trace.record(BranchSite("main", "body@01.3"), True)
    trace.record(BranchSite("main", "join~2"), False)
    loaded = trace_from_bytes(trace_to_bytes(trace))
    assert loaded.sites == trace.sites


class TestVarintBoundaries:
    """Round trips where site ids cross varint byte boundaries."""

    def _many_site_trace(self, site_count: int) -> Trace:
        trace = Trace()
        # Touch the highest ids first so late ids are exercised even if
        # an implementation truncated the site table.
        for index in (site_count - 1, site_count // 2, 0):
            trace.record(BranchSite("f", f"b{index}"), index % 2 == 0)
        for index in range(site_count):
            trace.record(BranchSite("f", f"b{index}"), index % 3 == 0)
        return trace

    def test_two_byte_varint_ids(self):
        # ids >= 2**7 need two varint bytes.
        trace = self._many_site_trace((1 << 7) + 5)
        loaded = trace_from_bytes(trace_to_bytes(trace))
        assert loaded.sites == trace.sites
        assert list(loaded.events()) == list(trace.events())

    def test_three_byte_varint_ids(self):
        # ids >= 2**14 need three varint bytes.
        trace = self._many_site_trace((1 << 14) + 3)
        loaded = trace_from_bytes(trace_to_bytes(trace))
        assert loaded.sites == trace.sites
        assert list(loaded.events()) == list(trace.events())

    def test_empty_trace_has_no_events_or_sites(self):
        loaded = trace_from_bytes(trace_to_bytes(Trace()))
        assert len(loaded) == 0
        assert loaded.sites == []

    def test_truncated_varint_stream_rejected(self):
        trace = self._many_site_trace((1 << 7) + 5)
        blob = bytearray(trace_to_bytes(trace))
        # Lie about the event count so varint decoding runs dry.
        import struct

        site_count, event_count, site_len, id_len, dir_len = struct.unpack(
            "<QQIII", bytes(blob[4 : 4 + struct.calcsize("<QQIII")])
        )
        blob[4 : 4 + struct.calcsize("<QQIII")] = struct.pack(
            "<QQIII", site_count, event_count + 50, site_len, id_len, dir_len
        )
        with pytest.raises(TraceFormatError):
            trace_from_bytes(bytes(blob))

    def test_garbage_compressed_payload_rejected(self):
        trace = self._many_site_trace(10)
        blob = trace_to_bytes(trace)
        import struct

        header = 4 + struct.calcsize("<QQIII")
        site_count, event_count, site_len, id_len, dir_len = struct.unpack(
            "<QQIII", blob[4:header]
        )
        corrupted = (
            blob[: header + site_len]
            + b"\x00" * id_len
            + blob[header + site_len + id_len :]
        )
        with pytest.raises(TraceFormatError):
            trace_from_bytes(corrupted)
