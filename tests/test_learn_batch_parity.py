"""Learned-predictor batch-kernel parity.

Same contract as ``test_predictors_batch_parity``: for every learned
kind × scope, ``evaluate_many`` (LUT batch kernels) must be byte-
identical to the sequential reference ``evaluate`` — and the numpy and
pure-Python fallback modes must agree with each other — on arbitrary
traces.  Training itself must also be mode-independent: the weights a
``fit`` produces under numpy columns equal the fallback's exactly.
"""

import os
from contextlib import contextmanager

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.ir import BranchSite
from repro.learn import LearnedConfig, LearnedPredictor, fit, holdout_trace, model_to_json
from repro.predictors import evaluate, evaluate_many
from repro.profiling import Trace, trace_from_bytes, trace_to_bytes
from repro.profiling.columns import get_numpy


@contextmanager
def numpy_mode(disabled: bool):
    saved = os.environ.get("REPRO_NO_NUMPY")
    if disabled:
        os.environ["REPRO_NO_NUMPY"] = "1"
    else:
        os.environ.pop("REPRO_NO_NUMPY", None)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = saved


#: Every kind × scope, with small widths so tiny random traces still
#: exercise seen *and* unseen pattern rows.
LEARNED_CONFIGS = [
    LearnedConfig(kind="perceptron", scope="global", history_bits=3),
    LearnedConfig(kind="perceptron", scope="peraddr", history_bits=3),
    LearnedConfig(kind="perceptron", scope="hybrid", history_bits=2),
    LearnedConfig(kind="logistic", scope="global", history_bits=3),
    LearnedConfig(kind="logistic", scope="peraddr", history_bits=3),
    LearnedConfig(kind="logistic", scope="hybrid", history_bits=2),
]


def build_trace(events):
    trace = Trace()
    for site_index, taken in events:
        trace.record(BranchSite("f", f"b{site_index}"), taken)
    return trace


def learned_predictors(trace, split):
    columns = trace.columns()
    return [
        LearnedPredictor(fit(columns, config, split))
        for config in LEARNED_CONFIGS
    ]


def assert_results_identical(reference, batch):
    assert len(reference) == len(batch)
    for a, b in zip(reference, batch):
        assert a.predictor == b.predictor
        assert a.events == b.events
        assert a.mispredictions == b.mispredictions
        assert a.per_site == b.per_site


events_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.booleans()), min_size=1, max_size=200
)
split_strategy = st.sampled_from([0.25, 0.5, 1.0])


@given(events_strategy, split_strategy, st.booleans())
@settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_learned_batch_kernels_match_sequential_evaluate(events, split, no_numpy):
    with numpy_mode(no_numpy):
        trace = build_trace(events)
        # Evaluate on the *whole* trace: frozen models, unseen suffix
        # sites route through the shared model, exercising every row
        # type the kernels gather.
        reference = [
            evaluate(predictor, trace)
            for predictor in learned_predictors(trace, split)
        ]
        batch = evaluate_many(learned_predictors(trace, split), trace)
        assert_results_identical(reference, batch)


@given(events_strategy, split_strategy)
@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_learned_numpy_and_fallback_agree(events, split):
    if get_numpy() is None:
        pytest.skip("numpy unavailable; only one mode to compare")
    trace_bytes = trace_to_bytes(build_trace(events))
    documents = []
    modes = []
    for disabled in (False, True):
        with numpy_mode(disabled):
            trace = trace_from_bytes(trace_bytes)
            columns = trace.columns()
            models = [fit(columns, config, split) for config in LEARNED_CONFIGS]
            documents.append([model_to_json(model) for model in models])
            modes.append(
                evaluate_many(
                    [LearnedPredictor(model) for model in models], trace
                )
            )
    # Training is mode-independent down to the serialized weights...
    assert documents[0] == documents[1]
    # ...and so is every evaluation result.
    assert_results_identical(*modes)


@given(events_strategy)
@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_unseen_sites_use_shared_model(events):
    """A model trained on a foreign trace (different site names) must
    predict every event through its shared sub-model — identically in
    stepper and batch form."""
    foreign = build_trace(events)
    target = Trace()
    for index, (site_index, taken) in enumerate(events):
        target.record(BranchSite("g", f"x{site_index}"), taken)
    for config in LEARNED_CONFIGS:
        model = fit(foreign.columns(), config, 1.0)
        reference = evaluate(LearnedPredictor(model), target)
        [batch] = evaluate_many([LearnedPredictor(model)], target)
        assert reference.mispredictions == batch.mispredictions
        assert reference.per_site == batch.per_site


def test_holdout_trace_is_the_suffix():
    events = [(i % 3, i % 2 == 0) for i in range(20)]
    trace = build_trace(events)
    hold = holdout_trace(trace, 0.5)
    assert len(hold) == 10
    expected = [(f"b{s}", t) for s, t in events[10:]]
    got = [(hold.sites[sid].block, bool(d)) for sid, d in hold.events()]
    assert got == expected
