"""Tests for the extension experiments: alignment, cost fn, joint."""

import pytest

from repro.experiments import alignment, costfn, joint

NAMES = ["ghostview", "doduc"]


class TestAlignment:
    @pytest.fixture(scope="class")
    def result(self):
        return alignment.run(scale=1, names=NAMES)

    def test_rows(self, result):
        assert result.rows == [
            "original layout",
            "rotated",
            "rotated + aligned",
            "replicated + aligned",
        ]

    def test_alignment_cuts_taken_transfers(self, result):
        original = sum(taken for taken, _ in result.data["original layout"])
        aligned = sum(taken for taken, _ in result.data["rotated + aligned"])
        assert aligned <= original

    def test_rotation_cuts_instructions(self, result):
        original = sum(instrs for _, instrs in result.data["original layout"])
        rotated = sum(instrs for _, instrs in result.data["rotated"])
        assert rotated <= original

    def test_replication_cuts_further(self, result):
        aligned = sum(taken for taken, _ in result.data["rotated + aligned"])
        replicated = sum(
            taken for taken, _ in result.data["replicated + aligned"]
        )
        assert replicated <= aligned

    def test_values_positive(self, result):
        for row in result.rows:
            for taken, instrs in result.data[row]:
                assert taken >= 0 and instrs > 0


class TestCostFunction:
    @pytest.fixture(scope="class")
    def result(self):
        return costfn.run("ghostview", scale=1, max_states=4)

    def test_columns(self, result):
        assert "est. cycles" in result.columns

    def test_first_step_is_original_size(self, result):
        assert result.data[result.rows[0]][0] == pytest.approx(1.0)

    def test_misprediction_decreases_along_curve(self, result):
        rates = [result.data[row][1] for row in result.rows]
        assert rates[-1] <= rates[0]

    def test_cache_misses_grow_with_replication(self, result):
        misses = [result.data[row][2] for row in result.rows]
        assert misses[-1] >= misses[0]


class TestJointExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return joint.run(scale=1, names=["c-compiler", "doduc"])

    def test_rows(self, result):
        assert "independent mispredict" in result.rows
        assert "joint loop multiplier" in result.rows

    def test_joint_cheaper_on_ccompiler(self, result):
        indep = result.data["independent loop multiplier"][0]
        shared = result.data["joint loop multiplier"][0]
        assert shared <= indep

    def test_joint_wins_where_branches_share_history(self, result):
        indep = result.data["independent mispredict"][0]
        shared = result.data["joint mispredict"][0]
        # c-compiler's Markov generator + dispatch chain overlap
        # heavily; the joint machine exploits it.
        assert shared < indep
