"""Property-based tests (hypothesis) on the core invariants.

The heavyweight invariant is the last one: *code replication never
changes program behaviour* — checked on randomly generated structured
programs with randomly chosen branches and machines.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cfg import CFG, DominatorTree, LoopForest, classify_branches
from repro.interp import run_program
from repro.ir import BranchSite, format_program, parse_program, validate_program
from repro.profiling import (
    PatternTable,
    ProfileData,
    Trace,
    trace_from_bytes,
    trace_to_bytes,
    trace_program,
)
from repro.replication import ReplicationPlanner, apply_replication
from repro.statemachines import (
    best_intra_machine,
    greedy_intra_machine,
    node_counts,
    partition_score,
    shape_leaves,
    shapes_with_leaves,
)
from repro.workloads import random_program

events_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.booleans()), max_size=300
)


@given(events_strategy)
def test_trace_file_roundtrip(events):
    trace = Trace()
    for site_index, taken in events:
        trace.record(BranchSite("f", f"b{site_index}"), taken)
    loaded = trace_from_bytes(trace_to_bytes(trace))
    assert list(loaded.events()) == list(trace.events())
    assert loaded.sites == trace.sites


@given(events_strategy, st.integers(1, 8))
def test_marginalization_preserves_totals(events, bits):
    table = PatternTable(9)
    history = 0
    for _, taken in events:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & 0x1FF
    short = table.marginalize(bits)
    assert short.total() == table.total()
    # Per-pattern majority at full depth is at least as accurate.
    assert table.correct_if_per_pattern() >= short.correct_if_per_pattern()


@given(st.lists(st.booleans(), min_size=1, max_size=400), st.integers(2, 6))
def test_machine_search_bounds(outcomes, max_states):
    table = PatternTable(9)
    history = 0
    for taken in outcomes:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & 0x1FF
    scored = best_intra_machine(table, max_states)
    # Never worse than profile, never better than the full table.
    assert scored.correct >= max(table.total())
    assert scored.correct <= table.correct_if_per_pattern()
    greedy = greedy_intra_machine(table, max_states)
    assert greedy.correct <= scored.correct


@given(st.integers(1, 7))
def test_trie_shapes_partition(n_leaves):
    for shape in shapes_with_leaves(n_leaves):
        leaves = shape_leaves(shape)
        max_depth = max(length for _, length in leaves)
        for history in range(1 << max_depth):
            matches = [
                (value, length)
                for value, length in leaves
                if (history & ((1 << length) - 1)) == value
            ]
            assert len(matches) == 1


@given(st.lists(st.booleans(), min_size=10, max_size=300))
def test_partition_score_conserves_counts(outcomes):
    table = PatternTable(9)
    history = 0
    for taken in outcomes:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & 0x1FF
    nodes = node_counts(table)
    for shape in shapes_with_leaves(3):
        leaves = shape_leaves(shape)
        charged = sum(
            sum(nodes.get(leaf, (0, 0))) for leaf in leaves
        )
        assert charged == len(outcomes)
        assert partition_score(nodes, leaves) <= len(outcomes)


@given(events_strategy)
def test_online_profiler_matches_batch(events):
    from repro.profiling import OnlineProfiler

    trace = Trace()
    for site_index, taken in events:
        trace.record(BranchSite("f", f"b{site_index}"), taken)
    batch = ProfileData.from_trace(trace)
    online = OnlineProfiler()
    for site, taken in trace:
        online.record(site, taken)
    streamed = online.finish()
    assert streamed.totals == batch.totals
    for site in batch.totals:
        assert streamed.local[site].counts == batch.local[site].counts
        assert (
            streamed.global_tables[site].counts
            == batch.global_tables[site].counts
        )


@given(events_strategy)
def test_profile_serialisation_roundtrip(events):
    from repro.profiling import profile_from_bytes, profile_to_bytes

    trace = Trace()
    for site_index, taken in events:
        trace.record(BranchSite("f", f"b{site_index}"), taken)
    profile = ProfileData.from_trace(trace)
    loaded = profile_from_bytes(profile_to_bytes(profile))
    assert loaded.totals == profile.totals
    for site in profile.totals:
        assert loaded.local[site].counts == profile.local[site].counts


@given(st.integers(0, 200))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_analyse_cleanly(seed):
    program = random_program(seed)
    validate_program(program)
    function = program.main_function()
    cfg = CFG.from_function(function)
    tree = DominatorTree(cfg)
    forest = LoopForest(cfg, tree)
    # Every loop header dominates its whole body.
    for loop in forest:
        for label in loop.body:
            assert tree.dominates(loop.header, label)
    classify_branches(program)


@given(st.integers(0, 200))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_roundtrip(seed):
    program = random_program(seed)
    text = format_program(program)
    assert format_program(parse_program(text)) == text


@given(st.integers(0, 150), st.integers(0, 20))
@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rotation_and_layout_preserve_semantics(seed, arg):
    """Loop rotation + alignment + chain layout never change behaviour."""
    from repro.layout import layout_program, profile_edges, rotate_program
    from repro.replication import annotate_profile_predictions

    program = random_program(seed)
    reference = run_program(program.copy(), [arg], max_steps=2_000_000)
    trace, _ = trace_program(program.copy(), [arg], max_steps=2_000_000)
    profile = ProfileData.from_trace(trace)
    annotate_profile_predictions(program, profile)
    rotate_program(program)
    layout_program(program, profile_edges(program, [arg]))
    validate_program(program)
    transformed = run_program(program, [arg], max_steps=2_000_000)
    assert transformed.value == reference.value
    assert transformed.output == reference.output


@given(st.integers(0, 150))
@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scheduling_estimates_well_formed(seed):
    """Superblock estimates exist for any annotated program and never
    exceed the per-block baseline."""
    from repro.interp import Machine
    from repro.replication import annotate_profile_predictions
    from repro.scheduling import estimate_program_cycles

    program = random_program(seed)
    trace, _ = trace_program(program.copy(), [seed % 7], max_steps=2_000_000)
    profile = ProfileData.from_trace(trace)
    annotate_profile_predictions(program, profile)
    machine = Machine(program, max_steps=2_000_000, count_edges=True)
    machine.run(seed % 7)
    counts = {}
    for (fn, _src, dst), count in machine.edge_counts.items():
        counts[(fn, dst)] = counts.get((fn, dst), 0) + count
    for function in program:
        counts.setdefault((function.name, function.entry), 1)
    baseline, region = estimate_program_cycles(program, counts)
    assert 0 <= region <= baseline


@given(st.integers(0, 120), st.integers(0, 15))
@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_inlining_preserves_semantics(seed, arg):
    """Inlining random helper calls never changes behaviour, and the
    pipeline still works on the inlined program."""
    from repro.opt import inline_all_calls

    program = random_program(seed, helpers=2)
    validate_program(program)
    reference = run_program(program.copy(), [arg], max_steps=2_000_000)
    inlined = program.copy()
    inline_all_calls(inlined)
    validate_program(inlined)
    result = run_program(inlined, [arg], max_steps=2_000_000)
    assert result.value == reference.value
    assert result.output == reference.output


@given(st.integers(0, 80), st.integers(0, 30))
@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replication_preserves_semantics(seed, arg):
    """The headline property: replicated programs behave identically."""
    program = random_program(seed, helpers=seed % 3)
    reference = run_program(program.copy(), [arg], max_steps=2_000_000)
    trace, _ = trace_program(program.copy(), [arg], max_steps=2_000_000)
    if len(trace) == 0:
        return
    profile = ProfileData.from_trace(trace)
    planner = ReplicationPlanner(program, profile, max_states=4)
    selections = []
    for plan in planner.improvable_plans():
        option = plan.best_option(4)
        if option is not None:
            selections.append((plan.site, option.scored.machine))
    report = apply_replication(program, selections, profile)
    validate_program(report.program)
    transformed = run_program(report.program, [arg], max_steps=8_000_000)
    assert transformed.value == reference.value
    assert transformed.output == reference.output
