"""ServiceClient 429 retry: Retry-After honoured, backoff capped.

The server side is a tiny scripted HTTP server that answers each
request from a canned list of (status, retry_after) — no service
stack involved, so the tests pin down exactly the client's contract:

* retries are **opt-in** (default behaviour returns the 429);
* only 429 is retried (503 and 500 are not);
* the sleep before each retry is at least the server's Retry-After
  and never exceeds the cap;
* attempts stop at ``retries`` and the last response wins.

Sleeps are injected, so the suite runs in milliseconds.
"""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    ServiceClient,
    ServiceError,
)


class _ScriptedHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *args):
        pass

    def _answer(self) -> None:
        script = self.server.script  # type: ignore[attr-defined]
        with self.server.lock:  # type: ignore[attr-defined]
            index = min(self.server.hits, len(script) - 1)
            self.server.hits += 1
        status, retry_after = script[index]
        body = json.dumps(
            {"ok": True}
            if status < 400
            else {"error": {"status": status, "code": "overloaded", "message": "later"}}
        ).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer


@pytest.fixture
def scripted_server():
    """``boot(script)`` → port; each request consumes one script entry
    (the last entry repeats if the client keeps asking)."""
    servers = []

    def boot(script):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.script = list(script)
        server.hits = 0
        server.lock = threading.Lock()
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server

    yield boot
    for server in servers:
        server.shutdown()
        server.server_close()


def _client(port, retries, sleeps):
    return ServiceClient(
        "127.0.0.1",
        port,
        timeout=5.0,
        retries=retries,
        sleep=sleeps.append,
        rng=random.Random(7),
    )


class TestOptIn:
    def test_default_client_does_not_retry(self, scripted_server):
        server = scripted_server([(429, 1), (200, None)])
        sleeps = []
        with _client(server.server_port, 0, sleeps) as client:
            status, _ = client.request_raw("GET", "/anything")
        assert status == 429
        assert sleeps == []
        assert server.hits == 1

    def test_request_raises_service_error_without_retries(self, scripted_server):
        server = scripted_server([(429, 1)])
        with _client(server.server_port, 0, []) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/anything")
        assert excinfo.value.status == 429


class TestRetry:
    def test_429_then_200_succeeds_after_one_sleep(self, scripted_server):
        server = scripted_server([(429, 2), (200, None)])
        sleeps = []
        with _client(server.server_port, 3, sleeps) as client:
            document = client.request("GET", "/anything")
        assert document == {"ok": True}
        assert server.hits == 2
        assert len(sleeps) == 1
        assert client.retries_performed == 1

    def test_sleep_honours_retry_after_floor(self, scripted_server):
        server = scripted_server([(429, 2), (200, None)])
        sleeps = []
        with _client(server.server_port, 3, sleeps) as client:
            client.request("GET", "/anything")
        # at least the server's hint, at most hint + jitter (≤ 25%)
        assert 2.0 <= sleeps[0] <= 2.0 * 1.25

    def test_sleep_never_exceeds_cap(self, scripted_server):
        server = scripted_server([(429, 3600), (200, None)])
        sleeps = []
        with _client(server.server_port, 3, sleeps) as client:
            client.request("GET", "/anything")
        assert sleeps[0] == BACKOFF_CAP

    def test_backoff_grows_without_retry_after(self, scripted_server):
        server = scripted_server([(429, None)] * 3 + [(200, None)])
        sleeps = []
        with _client(server.server_port, 5, sleeps) as client:
            client.request("GET", "/anything")
        assert len(sleeps) == 3
        # exponential base doubling, jitter only stretches
        for attempt, slept in enumerate(sleeps):
            base = BACKOFF_BASE * (2.0 ** attempt)
            assert base <= slept <= base * 1.25
        assert sleeps[0] < sleeps[1] < sleeps[2]

    def test_attempts_are_bounded(self, scripted_server):
        server = scripted_server([(429, 0.01)])  # never recovers
        sleeps = []
        with _client(server.server_port, 2, sleeps) as client:
            status, _ = client.request_raw("GET", "/anything")
        assert status == 429
        assert server.hits == 3  # 1 try + 2 retries
        assert len(sleeps) == 2


class TestOnly429:
    @pytest.mark.parametrize("status", [500, 503])
    def test_other_statuses_are_not_retried(self, scripted_server, status):
        server = scripted_server([(status, 1), (200, None)])
        sleeps = []
        with _client(server.server_port, 3, sleeps) as client:
            got, _ = client.request_raw("GET", "/anything")
        assert got == status
        assert sleeps == []
        assert server.hits == 1


class TestRetryAfterParsing:
    def test_last_retry_after_is_recorded(self, scripted_server):
        server = scripted_server([(429, 7)])
        with _client(server.server_port, 0, []) as client:
            client.request_raw("GET", "/anything")
        assert client.last_retry_after == 7.0

    def test_absent_header_clears_the_field(self, scripted_server):
        server = scripted_server([(429, 7), (200, None)])
        with _client(server.server_port, 1, []) as client:
            client.request_raw("GET", "/anything")
        assert client.last_retry_after is None
