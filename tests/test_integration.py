"""End-to-end integration tests over the real workloads.

Each test runs the full pipeline — trace, profile, plan, transform,
re-run — the way the paper's tools chain together.
"""

import pytest

from repro.interp import run_program
from repro.ir import validate_program
from repro.predictors import ProfilePredictor, evaluate
from repro.profiling import ProfileData
from repro.replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
    tradeoff_curve,
)
from repro.workloads import get_profile, get_program, get_trace, get_workload


@pytest.mark.parametrize("name", ["ghostview", "compress", "c-compiler"])
def test_full_pipeline_improves_misprediction(name):
    program = get_program(name)
    workload = get_workload(name)
    args, input_values = workload.default_args(1)
    profile = get_profile(name, 1)
    planner = ReplicationPlanner(program, profile, max_states=4)

    selections = []
    for plan in planner.improvable_plans():
        option = plan.best_option(4)
        if option is not None:
            selections.append((plan.site, option.scored.machine))
    assert selections, f"{name} should have improvable branches"

    report = apply_replication(program, selections, profile)
    validate_program(report.program)

    # Behaviour is preserved.
    reference = run_program(program.copy(), args, input_values)
    transformed = run_program(report.program, args, input_values)
    assert transformed.value == reference.value
    assert transformed.output == reference.output

    # Misprediction improves over plain profile annotation.
    baseline = measure_annotated(
        apply_replication(program, [], profile).program, args, input_values
    )
    improved = measure_annotated(report.program, args, input_values)
    assert improved.mispredictions < baseline.mispredictions

    # And roughly matches what the planner promised.
    promised = planner.best_misprediction_rate(4)
    assert improved.misprediction_rate == pytest.approx(promised, abs=0.05)


def test_measured_rate_close_to_planned_across_suite():
    # Aggregate check on two more benchmarks with a looser tolerance.
    for name in ["c-compiler", "scheduler"]:
        program = get_program(name)
        workload = get_workload(name)
        args, input_values = workload.default_args(1)
        profile = get_profile(name, 1)
        planner = ReplicationPlanner(program, profile, max_states=3)
        selections = [
            (plan.site, plan.best_option(3).scored.machine)
            for plan in planner.improvable_plans()
            if plan.best_option(3) is not None
        ]
        report = apply_replication(program, selections, profile)
        validate_program(report.program)
        transformed = run_program(report.program, args, input_values)
        reference = run_program(program.copy(), args, input_values)
        assert transformed.value == reference.value


def test_tradeoff_curve_end_matches_applied_program():
    """The analytic size model must be in the ballpark of real sizes."""
    name = "ghostview"
    program = get_program(name)
    profile = get_profile(name, 1)
    planner = ReplicationPlanner(program, profile, max_states=3)
    points = tradeoff_curve(planner, max_size_factor=4.0)
    if len(points) < 2:
        pytest.skip("no upgrades under the cap")
    # Apply the same upgrades for real.
    chosen = {}
    for point in points[1:]:
        site, n_states = point.step
        plan = planner.plans[site]
        option = next(o for o in plan.options if o.n_states == n_states)
        chosen[site] = option
    report = apply_replication(
        program, [(site, o.scored.machine) for site, o in chosen.items()], profile
    )
    analytic = points[-1].size_factor
    actual = report.size_factor
    # Pruning makes the real program smaller than the model; cascading
    # through shared loops can make it bigger.  Same ballpark required.
    assert actual < analytic * 2.5 + 1.0


def test_profile_evaluation_agrees_with_measurement():
    """Trace-driven evaluation and in-program measurement must agree."""
    name = "predict"
    program = get_program(name)
    workload = get_workload(name)
    args, input_values = workload.default_args(1)
    trace = get_trace(name, 1)
    profile = ProfileData.from_trace(trace)
    evaluated = evaluate(ProfilePredictor(profile), trace)
    measured = measure_annotated(
        apply_replication(program, [], profile).program, args, input_values
    )
    assert measured.events == evaluated.events
    assert measured.mispredictions == evaluated.mispredictions
