"""Live-server contract tests for distributed tracing and profiling.

Single-server coverage against a real :class:`ServiceServer` on an
ephemeral port (the tracing fleet contract — cross-shard stitching —
runs against a ``spawn_fleet`` subprocess, same as
``tests/test_service_fleet.py``):

* every response carries ``X-Trace-Id`` and the envelope's
  ``trace_id``, and an inbound W3C ``traceparent`` is honoured;
* ``GET /trace/{id}`` resolves a kept trace to a stitched span tree
  (and 404s unknown ids; 400s malformed ids);
* ``GET /debug/traces`` summarises the flight-recorder ring;
* ``GET /metrics`` carries OpenMetrics exemplars that the promtext
  parser round-trips;
* ``GET /debug/profile`` returns non-empty collapsed stacks, rejects
  bad durations, and 429s a concurrent profile;
* ``trace_off`` (the ``REPRO_TRACE_OFF=1`` path) disables all of it;
* a 2-worker fleet stitches a proxied request across both pids with
  exactly one root span, and both workers' access logs carry the
  trace id (owner-side ``owner: true``, client-facing
  ``proxied: true``).
"""

import json
import threading
import time

import pytest

from repro.obs.promtext import parse_exemplars, validate_exposition
from repro.service import (
    ServiceClient,
    ServiceConfig,
    shutdown_gracefully,
    start_background,
)
from repro.service.supervisor import spawn_fleet

BENCH = "compress"
#: seed_offset base private to this module
SEED_BASE = 70_000


@pytest.fixture(scope="module")
def server():
    # sample_rate 1.0: every finished trace must land in the ring so
    # the tests can resolve the ids they just saw.
    server, _ = start_background(
        ServiceConfig(port=0, threads=2, trace_sample=1.0)
    )
    yield server
    shutdown_gracefully(server, drain_seconds=5)


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


class TestTraceIds:
    def test_every_response_names_its_trace(self, client):
        status, document = client.request_raw("GET", "/healthz")
        assert status == 200
        assert client.last_trace_id
        assert len(client.last_trace_id) == 32
        assert document["trace_id"] == client.last_trace_id

    def test_fresh_trace_per_request(self, client):
        client.request_raw("GET", "/healthz")
        first = client.last_trace_id
        client.request_raw("GET", "/healthz")
        assert client.last_trace_id != first

    def test_inbound_traceparent_is_honoured(self, server):
        import http.client

        inbound = "ab" * 16
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            connection.request(
                "GET",
                "/healthz",
                headers={"traceparent": f"00-{inbound}-{'cd' * 8}-01"},
            )
            response = connection.getresponse()
            response.read()
            assert response.getheader("X-Trace-Id") == inbound
        finally:
            connection.close()


class TestTraceEndpoint:
    def _heavy_trace_id(self, client, seed):
        client.request(
            "POST",
            "/artifacts",
            {"name": BENCH, "scale": 1, "seed_offset": SEED_BASE + seed},
        )
        return client.last_trace_id

    def test_kept_trace_resolves_to_span_tree(self, client):
        trace_id = self._heavy_trace_id(client, 1)
        doc = client.request("GET", f"/trace/{trace_id}")
        assert doc["trace_id"] == trace_id
        assert doc["route"] == "artifacts"
        assert doc["status"] == 200
        spans = doc["spans"]
        assert spans, "kept trace must carry spans"
        names = {span["name"] for span in spans}
        assert "service.request" in names
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert len(doc["tree"]) == len(spans)
        events = doc["chrome"]["traceEvents"]
        assert {e["args"]["span_id"] for e in events} == {
            s["span_id"] for s in spans
        }

    def test_unknown_trace_is_404(self, client):
        status, document = client.request_raw("GET", f"/trace/{'f' * 32}")
        assert status == 404
        assert document["error"]["code"] == "trace_not_found"

    def test_malformed_trace_id_is_400(self, client):
        status, document = client.request_raw("GET", "/trace/nonsense")
        assert status == 400
        assert document["error"]["code"] == "bad_request"

    def test_debug_traces_summarises_ring(self, client):
        trace_id = self._heavy_trace_id(client, 2)
        doc = client.request("GET", "/debug/traces")
        assert doc["enabled"] is True
        assert doc["sample_rate"] == 1.0
        (recorder,) = doc["recorders"]
        assert recorder["retained"] >= 1
        assert trace_id in {t["trace_id"] for t in recorder["traces"]}


class TestExemplars:
    def test_metrics_carry_resolvable_exemplars(self, client):
        client.request(
            "POST",
            "/artifacts",
            {"name": BENCH, "scale": 1, "seed_offset": SEED_BASE + 3},
        )
        status, document = client.request_raw("GET", "/metrics")
        assert status == 200
        text = document["raw"]
        validate_exposition(text)  # raises ExpositionError on violation
        exemplars = parse_exemplars(text)
        assert exemplars, "latency buckets must carry exemplars"
        trace_id = exemplars[0]["exemplar"]["trace_id"]
        status, _ = client.request_raw("GET", f"/trace/{trace_id}")
        assert status == 200


class TestProfileEndpoint:
    def test_profile_returns_collapsed_stacks(self, client):
        status, document = client.request_raw(
            "GET", "/debug/profile?seconds=0.3"
        )
        assert status == 200
        text = document["raw"]
        assert text.strip()
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    @pytest.mark.parametrize("seconds", ["0", "-1", "99", "nan", "bogus"])
    def test_bad_seconds_is_400(self, client, seconds):
        status, document = client.request_raw(
            "GET", f"/debug/profile?seconds={seconds}"
        )
        assert status == 400
        assert document["error"]["code"] == "bad_request"

    def test_concurrent_profile_is_refused(self, server):
        results = {}

        def fetch(key):
            with ServiceClient(port=server.port, timeout=30.0) as client:
                status, _ = client.request_raw(
                    "GET", "/debug/profile?seconds=1"
                )
                results[key] = status

        first = threading.Thread(target=fetch, args=("first",))
        first.start()
        time.sleep(0.3)  # let the first profile acquire the lock
        fetch("second")
        first.join()
        assert results["first"] == 200
        assert results["second"] == 429


class TestTraceOff:
    def test_trace_off_disables_the_layer(self):
        server, _ = start_background(
            ServiceConfig(port=0, threads=2, trace_off=True)
        )
        try:
            with ServiceClient(port=server.port) as client:
                status, document = client.request_raw("GET", "/healthz")
                assert status == 200
                assert client.last_trace_id is None
                assert "trace_id" not in document
                doc = client.request("GET", "/debug/traces")
                assert doc["enabled"] is False
                (recorder,) = doc["recorders"]
                assert recorder["retained"] == 0
        finally:
            shutdown_gracefully(server, drain_seconds=5)


class TestFleetStitching:
    def test_cross_shard_trace_stitches_across_pids(self, tmp_path):
        log_path = str(tmp_path / "fleet-access.log")
        handle = spawn_fleet(
            workers=2,
            threads=2,
            extra_args=["--trace-sample", "1", "--log-json"],
            log_path=log_path,
        )
        try:
            proxied_doc = None
            with ServiceClient(handle.host, handle.port, timeout=60.0) as client:
                # The accepting worker is decided by the OS; try a few
                # keys until one lands on a non-owner and is proxied.
                for seed in range(40):
                    client.request(
                        "POST",
                        "/artifacts",
                        {
                            "name": BENCH,
                            "scale": 1,
                            "seed_offset": SEED_BASE + 100 + seed,
                        },
                    )
                    doc = client.request(
                        "GET", f"/trace/{client.last_trace_id}"
                    )
                    if doc["notes"].get("proxied"):
                        proxied_doc = doc
                        break
                assert proxied_doc, "no request was proxied across shards"
                spans = proxied_doc["spans"]
                assert len(set(proxied_doc["pids"])) >= 2
                assert len({s["pid"] for s in spans}) >= 2
                roots = [s for s in spans if s["parent_id"] not in
                         {x["span_id"] for x in spans}]
                assert len(roots) == 1
                assert {"service.request", "service.invoke"} <= {
                    s["name"] for s in spans
                }
            trace_id = proxied_doc["trace_id"]
            deadline = time.time() + 5.0
            lines = []
            while time.time() < deadline:
                with open(log_path) as stream:
                    lines = [
                        json.loads(line)
                        for line in stream
                        if line.startswith("{") and trace_id in line
                    ]
                if len(lines) >= 2:
                    break
                time.sleep(0.2)
            assert any(entry.get("owner") is True for entry in lines)
            assert any(entry.get("proxied") is True for entry in lines)
            shards = {entry.get("shard") for entry in lines}
            assert len(shards) == 2
        finally:
            handle.stop()
