"""Interpreter tests: calls, recursion and cross-function behaviour."""

import pytest

from repro.interp import Machine, TrapError, run_program
from repro.ir import parse_program


def test_simple_call(recursive_sum):
    assert run_program(recursive_sum, [10]).value == 55


def test_deep_recursion_uses_no_host_stack(recursive_sum):
    # 50k frames would overflow CPython's recursion limit if the
    # interpreter recursed natively.
    assert run_program(recursive_sum, [50_000]).value == 50_000 * 50_001 // 2


def test_mutual_recursion():
    program = parse_program(
        """
func is_even(n) {
entry:
  br eq n, 0 ? yes : recurse
yes:
  ret 1
recurse:
  m = sub n, 1
  r = call is_odd(m)
  ret r
}

func is_odd(n) {
entry:
  br eq n, 0 ? no : recurse
no:
  ret 0
recurse:
  m = sub n, 1
  r = call is_even(m)
  ret r
}

func main(n) {
entry:
  r = call is_even(n)
  ret r
}
"""
    )
    assert run_program(program, [10]).value == 1
    assert run_program(program, [7]).value == 0


def test_registers_are_function_local():
    program = parse_program(
        """
func clobber() {
entry:
  x = const 999
  ret x
}

func main() {
entry:
  x = const 1
  y = call clobber()
  ret x
}
"""
    )
    assert run_program(program).value == 1


def test_memory_is_shared_across_functions():
    program = parse_program(
        """
func writer(p) {
entry:
  store p, 77, 0
  ret
}

func main() {
entry:
  p = alloc 1
  call writer(p)
  x = load p, 0
  ret x
}
"""
    )
    assert run_program(program).value == 77


def test_void_return_into_dest_traps():
    program = parse_program(
        """
func nothing() {
entry:
  ret
}

func main() {
entry:
  x = call nothing()
  ret x
}
"""
    )
    with pytest.raises(TrapError):
        run_program(program)


def test_call_unknown_function_traps():
    # The validator would catch this; the interpreter must too when run
    # on an unvalidated program.
    program = parse_program("func main() {\nentry:\n  x = call ghost()\n  ret x\n}")
    with pytest.raises(TrapError):
        run_program(program)


def test_branch_events_cross_functions(recursive_sum):
    events = []
    run_program(recursive_sum, [3], on_branch=lambda s, t: events.append(s.function))
    assert set(events) == {"sum"}
    assert len(events) == 4  # n=3,2,1 recurse + n=0 base


def test_machine_call_alternate_entry(recursive_sum):
    machine = Machine(recursive_sum)
    assert machine.call("sum", [4]).value == 10
