"""Unit tests for the textual parser."""

import pytest

from repro.ir import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Cmp,
    Const,
    In,
    Jump,
    Load,
    Move,
    Out,
    ParseError,
    Return,
    Store,
    UnOp,
    parse_function,
    parse_program,
)


def first_instr(body: str):
    function = parse_function(
        f"func f() {{\nentry:\n  {body}\n  ret\n}}"
    )
    return function.block("entry").instrs[0]


def terminator_of(body: str):
    function = parse_function(f"func f() {{\nentry:\n  {body}\n}}")
    return function.block("entry").terminator


class TestInstructionParsing:
    def test_const(self):
        assert first_instr("x = const 42") == Const("x", 42)

    def test_const_hex(self):
        assert first_instr("x = const 0x10") == Const("x", 16)

    def test_negative_const(self):
        assert first_instr("x = const -5") == Const("x", -5)

    def test_move_register(self):
        assert first_instr("x = move y") == Move("x", "y")

    def test_move_immediate(self):
        assert first_instr("x = move 3") == Move("x", 3)

    def test_binop(self):
        assert first_instr("x = add a, 2") == BinOp("x", "add", "a", 2)

    def test_all_binops_parse(self):
        for op in ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "min", "max"):
            assert first_instr(f"x = {op} 1, 2") == BinOp("x", op, 1, 2)

    def test_unop(self):
        assert first_instr("x = neg y") == UnOp("x", "neg", "y")

    def test_cmp(self):
        assert first_instr("x = cmp lt a, b") == Cmp("x", "lt", "a", "b")

    def test_load(self):
        assert first_instr("x = load p, 4") == Load("x", "p", 4)

    def test_load_negative_offset(self):
        assert first_instr("x = load p, -1") == Load("x", "p", -1)

    def test_store(self):
        assert first_instr("store p, v, 2") == Store("p", "v", 2)

    def test_alloc(self):
        assert first_instr("x = alloc 16") == Alloc("x", 16)

    def test_call_with_result(self):
        assert first_instr("x = call f(a, 1)") == Call("x", "f", ("a", 1))

    def test_call_void(self):
        assert first_instr("call f(a)") == Call(None, "f", ("a",))

    def test_call_no_args(self):
        assert first_instr("x = call f()") == Call("x", "f", ())

    def test_in_out(self):
        assert first_instr("x = in") == In("x")
        assert first_instr("out x") == Out("x")


class TestTerminatorParsing:
    def test_jump(self):
        assert terminator_of("jump entry") == Jump("entry")

    def test_branch(self):
        assert terminator_of("br lt a, 5 ? entry : entry") == Branch(
            "lt", "a", 5, "entry", "entry"
        )

    def test_pointer_branch(self):
        branch = terminator_of("br.ptr eq p, 0 ? entry : entry")
        assert branch.pointer is True

    def test_ret_value(self):
        assert terminator_of("ret x") == Return("x")

    def test_ret_void(self):
        assert terminator_of("ret") == Return(None)


class TestProgramStructure:
    def test_comments_stripped(self):
        program = parse_program(
            "func main() {\nentry:  # a comment\n  ret ; also\n}"
        )
        assert "main" in program.functions

    def test_params_parsed(self):
        program = parse_program("func main(a, b, c) {\nentry:\n  ret\n}")
        assert program.main_function().params == ["a", "b", "c"]

    def test_implicit_fallthrough(self):
        program = parse_program(
            "func main() {\nentry:\n  x = const 1\nnext:\n  ret x\n}"
        )
        assert program.main_function().block("entry").terminator == Jump("next")

    def test_multiple_functions(self):
        program = parse_program(
            "func main() {\nentry:\n  ret\n}\nfunc helper() {\nentry:\n  ret\n}"
        )
        assert set(program.functions) == {"main", "helper"}


class TestParseErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  x = warp 1\n  ret\n}")

    def test_statement_outside_function(self):
        with pytest.raises(ParseError):
            parse_program("x = const 1")

    def test_instruction_before_label(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\n  x = const 1\n}")

    def test_unclosed_function(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  ret\n")

    def test_nested_function(self):
        with pytest.raises(ParseError):
            parse_program("func a() {\nfunc b() {\n}\n}")

    def test_instruction_after_terminator(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  ret\n  x = const 1\n}")

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_program("func main() {\nentry:\n  x = bogus 1\n}")
        assert info.value.line_number == 3

    def test_bad_branch_syntax(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  br lt a ? b : c\n}")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  x = add 1, @@\n  ret\n}")

    def test_store_offset_must_be_immediate(self):
        with pytest.raises(ParseError):
            parse_program("func main() {\nentry:\n  store p, v, q\n  ret\n}")
