"""Speculative-scheduling experiment tests."""

import pytest

from repro.experiments import scheduling

NAMES = ["ghostview", "compress"]


@pytest.fixture(scope="module")
def result():
    return scheduling.run(scale=1, names=NAMES)


def test_rows(result):
    assert result.rows == [
        "per-block cycles",
        "superblock speedup",
        "replicated superblock speedup",
    ]


def test_positive_cycles(result):
    for value in result.data["per-block cycles"]:
        assert value > 0


def test_speedups_sane(result):
    for row in ("superblock speedup", "replicated superblock speedup"):
        for value in result.data[row]:
            assert 0.5 < value < 5.0


def test_replication_helps_ghostview(result):
    # ghostview's paint/clip branches mispredict under plain profile;
    # replication shrinks the wasted-speculation term.
    index = NAMES.index("ghostview")
    plain = result.data["superblock speedup"][index]
    replicated = result.data["replicated superblock speedup"][index]
    assert replicated >= plain - 1e-9
