"""PredictionMachine representation and simulation tests."""

import pytest

from repro.statemachines import (
    MachineState,
    PredictionMachine,
    is_suffix,
    pattern_str,
    pattern_suffix,
    single_state_machine,
)


def two_state_alternator() -> PredictionMachine:
    """Figure 1's machine: state = last outcome, predict the opposite."""
    return PredictionMachine(
        (
            MachineState("0", True, 0, 1, (0, 1)),
            MachineState("1", False, 0, 1, (1, 1)),
        ),
        initial=0,
        kind="intra-loop",
    )


class TestPatternHelpers:
    def test_pattern_str_oldest_first(self):
        # Newest bit is the LSB and is printed last ("the rightmost
        # digit represents the direction of the last iteration"), so the
        # rendering coincides with the binary literal.
        assert pattern_str((0b001, 3)) == "001"
        assert pattern_str((0b100, 3)) == "100"
        assert pattern_str((0b10, 2)) == "10"

    def test_pattern_str_empty(self):
        assert pattern_str((0, 0)) == "ε"
        assert pattern_str(None) == "*"

    def test_pattern_suffix(self):
        assert pattern_suffix((0b1101, 4), 2) == (0b01, 2)
        assert pattern_suffix((0b11, 2), 5) == (0b11, 2)

    def test_is_suffix(self):
        assert is_suffix((0b1, 1), (0b11, 2))
        assert is_suffix((0b01, 2), (0b101, 3))
        assert not is_suffix((0b0, 1), (0b11, 2))
        assert not is_suffix((0b111, 3), (0b11, 2))


class TestMachineValidation:
    def test_bad_transition_rejected(self):
        with pytest.raises(ValueError):
            PredictionMachine(
                (MachineState("0", True, 0, 5),), initial=0
            )

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            PredictionMachine(
                (MachineState("0", True, 0, 0),), initial=3
            )


class TestSimulation:
    def test_alternator_perfect_on_alternating(self):
        machine = two_state_alternator()
        outcomes = [True, False] * 50
        correct, total = machine.simulate(outcomes)
        assert total == 100
        assert correct >= 99  # at most one warmup miss

    def test_alternator_half_on_constant(self):
        machine = two_state_alternator()
        correct, total = machine.simulate([True] * 100)
        assert correct <= 2  # predicts the opposite almost always

    def test_single_state_machine(self):
        machine = single_state_machine(True)
        correct, total = machine.simulate([True, True, False])
        assert (correct, total) == (2, 3)

    def test_next_state(self):
        machine = two_state_alternator()
        assert machine.next_state(0, True) == 1
        assert machine.next_state(1, False) == 0

    def test_reachability(self):
        machine = two_state_alternator()
        assert machine.reachable_states() == [0, 1]

    def test_strong_connectivity(self):
        assert two_state_alternator().is_strongly_connected()

    def test_sink_state_not_strongly_connected(self):
        machine = PredictionMachine(
            (
                MachineState("a", True, 1, 1),
                MachineState("b", True, 1, 1),  # sink
            ),
            initial=0,
        )
        assert not machine.is_strongly_connected()

    def test_describe_mentions_states(self):
        text = two_state_alternator().describe()
        assert "[0]" in text and "[1]" in text
        assert "predict" in text
