"""Observability wired through the pipeline: CLI parity, trace export,
worker counter isolation, and the deprecation shims."""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.registry import RunContext, get_experiment
from repro.obs import OBS
from repro.workloads.artifacts import (
    cache_stats,
    clear_memory_cache,
    generate_artifacts,
    get_artifacts,
    reset_cache_stats,
)


@pytest.fixture(autouse=True)
def quiet_process_observer():
    """The CLI enables span recording on the process singleton; make
    sure no test leaks that (or its spans) into the rest of the suite."""
    yield
    OBS.disable()
    OBS.reset()


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    reset_cache_stats()
    yield
    clear_memory_cache()
    reset_cache_stats()


class TestCliParity:
    def test_stdout_identical_with_and_without_telemetry(
        self, fresh_cache, capsys, tmp_path
    ):
        assert main(["table1", "--names", "compress", "--jobs", "1"]) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "table1",
                    "--names",
                    "compress",
                    "--jobs",
                    "1",
                    "--timings",
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        observed = capsys.readouterr()
        assert observed.out == plain
        assert "[timings]" in observed.err

    def test_json_stdout_stays_parseable_under_timings(
        self, fresh_cache, capsys
    ):
        assert (
            main(
                [
                    "table1",
                    "--names",
                    "compress",
                    "--jobs",
                    "1",
                    "--format",
                    "json",
                    "--timings",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["title"].startswith("Table 1")
        assert "[timings]" in captured.err

    def test_trace_out_writes_chrome_trace_with_pipeline_spans(
        self, fresh_cache, capsys, tmp_path
    ):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "table1",
                    "--names",
                    "compress",
                    "--jobs",
                    "1",
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        assert doc["metadata"]["producer"] == "repro.obs"
        spans = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {
            "artifacts.prewarm",
            "workload.run",
            "profiling.build",
            "engine.evaluate_many",
            "experiment:table1",
        } <= spans
        counters = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert "engine.events" in counters
        assert "artifacts.cache.misses" in counters


class TestWorkerIsolation:
    def test_parallel_generation_merges_counters_under_workers(
        self, fresh_cache
    ):
        generate_artifacts(
            [("compress", 1, 0), ("abalone", 1, 0)], jobs=2
        )
        # The interpreter ran only in the worker processes; the parent's
        # own per-process counters (and cache_stats() built on them)
        # must not claim that work ...
        assert cache_stats().interpreter_runs == 0
        assert OBS.counter("artifacts.interpreter.runs") == 0
        # ... it lands namespaced instead.
        assert OBS.counter("workers.artifacts.interpreter.runs") == 2
        assert OBS.counter("workers.artifacts.cache.stores") == 2


class TestDeprecationShims:
    def test_positional_get_artifacts_warns(self, fresh_cache):
        with pytest.warns(DeprecationWarning, match="positionally"):
            positional = get_artifacts("compress", 1)
        assert positional is get_artifacts("compress", scale=1)

    def test_positional_plus_keyword_duplicate_rejected(self, fresh_cache):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                get_artifacts("compress", 1, scale=1)

    def test_too_many_positionals_rejected(self, fresh_cache):
        with pytest.raises(TypeError):
            get_artifacts("compress", 1, 0, 8, 9)

    def test_experiment_run_warns_and_matches_execute(self, fresh_cache):
        experiment = get_experiment("table1")
        ctx = RunContext(scale=1, names=("compress",))
        via_context = experiment.execute(ctx)
        with pytest.warns(DeprecationWarning, match="RunContext"):
            legacy = experiment.run(1, ["compress"])
        assert legacy.render() == via_context.render()

    def test_tables_rejects_context_plus_extras(self, fresh_cache):
        experiment = get_experiment("table1")
        ctx = RunContext(scale=1, names=("compress",))
        with pytest.raises(TypeError, match="inside the RunContext"):
            experiment.tables(ctx, names=["compress"])

    def test_tables_accepts_legacy_positional_form(self, fresh_cache):
        experiment = get_experiment("table1")
        ctx = RunContext(scale=1, names=("compress",))
        assert [t.render() for t in experiment.tables(1, ["compress"])] == [
            t.render() for t in experiment.tables(ctx)
        ]
