"""Chain layout and branch alignment tests."""

import pytest

from repro.interp import run_program
from repro.ir import IRError, parse_program, validate_program
from repro.layout import (
    align_branches,
    apply_layout,
    build_chains,
    layout_program,
    order_blocks,
    profile_edges,
    taken_transfer_rate,
)
from repro.replication import annotate_profile_predictions
from repro.profiling import ProfileData, trace_program


def prepared(program, args):
    trace, _ = trace_program(program.copy(), args)
    profile = ProfileData.from_trace(trace)
    return profile, profile_edges(program, args)


class TestChains:
    def test_hot_path_chained(self, alternating_loop):
        _, edges = prepared(alternating_loop, [100])
        chains = build_chains(alternating_loop.main_function(), edges["main"])
        by_member = {label: chain for chain in chains for label in chain}
        # The back edge cont->loop is among the hottest; they chain.
        chain = by_member["cont"]
        position = chain.index("cont")
        assert chain[position + 1] == "loop"

    def test_chains_partition_blocks(self, correlated_branches):
        _, edges = prepared(correlated_branches, [100])
        chains = build_chains(correlated_branches.main_function(), edges["main"])
        flat = [label for chain in chains for label in chain]
        assert sorted(flat) == sorted(correlated_branches.main_function().blocks)


class TestOrdering:
    def test_entry_first(self, alternating_loop):
        _, edges = prepared(alternating_loop, [100])
        order = order_blocks(alternating_loop.main_function(), edges["main"])
        assert order[0] == "entry"
        assert sorted(order) == sorted(alternating_loop.main_function().blocks)

    def test_apply_layout_reorders(self, alternating_loop):
        function = alternating_loop.main_function()
        _, edges = prepared(alternating_loop, [100])
        order = order_blocks(function, edges["main"])
        apply_layout(function, order)
        assert list(function.blocks) == order
        validate_program(alternating_loop)

    def test_apply_layout_validates_permutation(self, alternating_loop):
        function = alternating_loop.main_function()
        with pytest.raises(IRError):
            apply_layout(function, ["entry", "loop"])

    def test_apply_layout_requires_entry_first(self, alternating_loop):
        function = alternating_loop.main_function()
        order = list(function.blocks)
        order.remove("done")
        order.insert(0, "done")
        with pytest.raises(IRError):
            apply_layout(function, order)


class TestAlignment:
    def test_align_flips_predicted_taken(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [100])
        profile = ProfileData.from_trace(trace)
        annotate_profile_predictions(alternating_loop, profile)
        # The loop branch is predicted taken; alignment flips it.
        before = alternating_loop.main_function().block("loop").branch
        assert before.predict is True
        flipped = align_branches(alternating_loop.main_function())
        assert flipped >= 1
        after = alternating_loop.main_function().block("loop").branch
        assert after.predict is False
        assert after.op == "ge"  # lt negated

    def test_alignment_preserves_semantics(self, correlated_branches):
        expected = run_program(correlated_branches.copy(), [100]).value
        profile, edges = prepared(correlated_branches, [100])
        annotate_profile_predictions(correlated_branches, profile)
        layout_program(correlated_branches, edges)
        validate_program(correlated_branches)
        assert run_program(correlated_branches, [100]).value == expected

    def test_layout_reduces_taken_transfers(self, correlated_branches):
        args = [100]
        before, total_before = taken_transfer_rate(
            correlated_branches.copy(), args
        )
        profile, edges = prepared(correlated_branches, args)
        work = correlated_branches.copy()
        annotate_profile_predictions(work, profile)
        layout_program(work, edges)
        after, total_after = taken_transfer_rate(work, args)
        assert total_after == total_before
        assert after <= before

    def test_unannotated_branches_untouched(self, alternating_loop):
        flipped = align_branches(alternating_loop.main_function())
        assert flipped == 0


def test_rate_bounds(alternating_loop):
    rate, total = taken_transfer_rate(alternating_loop.copy(), [10])
    assert 0.0 <= rate <= 1.0
    assert total > 0
