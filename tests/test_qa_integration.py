"""End-to-end QA harness tests against a real fleet subprocess.

Each :func:`run_journey` call boots a private single-worker fleet on an
ephemeral port with its own cache directory, exactly like
``python -m repro qa run`` does, so these tests cover the full
journey → settle → invariant-sweep loop including one chaos scenario
and the deliberately-broken ``--inject-failure`` path.
"""

import pytest

from repro.qa import (
    CHAOS_SCENARIOS,
    JOURNEYS,
    default_invariants,
    run_journey,
    sabotage_invariant,
)


@pytest.fixture(scope="module")
def invariants():
    return default_invariants()


class TestHealthyJourney:
    def test_pipeline_runs_green(self, invariants):
        result = run_journey(JOURNEYS["pipeline"], invariants, workers=1)
        assert result.error is None
        assert result.ok, [str(v) for v in result.violations]
        assert result.steps == [
            "artifacts-cold", "predict", "machine", "plan", "replay-warm",
        ]
        # every step ran the catalog; fleet-only invariants skip at workers=1
        assert result.checks >= 5 * 8
        assert "counters.cache_accounting" in result.checked_invariants
        assert "envelope.v1_contract" in result.checked_invariants
        # skips are only the two legitimate kinds: fleet-only invariants
        # at workers=1, and checks whose state is not evaluable (e.g.
        # drain.contract while nothing is draining)
        assert all(
            skip.reason.startswith("missing conditions")
            or skip.reason == "check not evaluable"
            for skip in result.skips
        )


class TestChaosJourney:
    def test_cache_corruption_recovers(self, invariants):
        scenario = CHAOS_SCENARIOS["cache_corruption"]
        result = run_journey(
            JOURNEYS[scenario.base_journey], invariants, workers=1, chaos=scenario
        )
        assert result.error is None
        assert result.ok, [str(v) for v in result.violations]
        # the chaos extra steps ran after the base journey
        assert "poisoned-entry" in result.steps
        # disk accounting is withdrawn once the cache is corrupted, so
        # the disk invariant must appear among the skips, not the checks
        assert any(
            skip.invariant == "disk.cache_consistent"
            and "pristine_cache" in skip.reason
            for skip in result.skips
        )


class TestInjectFailure:
    def test_sabotage_produces_named_critical_violation(self, invariants):
        result = run_journey(
            JOURNEYS["pipeline"],
            invariants + [sabotage_invariant()],
            workers=1,
        )
        assert not result.ok
        assert result.error is None  # the journey itself still completes
        sabotaged = [
            v for v in result.violations if v.invariant == "sabotage.skewed_counter"
        ]
        assert sabotaged
        # the report names the divergent values, not just pass/fail
        detail = sabotaged[0].detail
        assert detail["expected_with_injected_skew"] != detail["observed_counter_delta"]
