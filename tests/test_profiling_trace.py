"""Trace data structure tests."""

from repro.ir import BranchSite
from repro.profiling import Trace, trace_program


def sample_trace() -> Trace:
    trace = Trace()
    a = BranchSite("f", "a")
    b = BranchSite("f", "b")
    trace.record(a, True)
    trace.record(b, False)
    trace.record(a, True)
    trace.record(a, False)
    return trace


def test_length():
    assert len(sample_trace()) == 4


def test_site_interning_is_stable():
    trace = sample_trace()
    assert trace.site_id(BranchSite("f", "a")) == 0
    assert trace.site_id(BranchSite("f", "b")) == 1
    assert len(trace.sites) == 2


def test_events_stream():
    assert list(sample_trace().events()) == [(0, 1), (1, 0), (0, 1), (0, 0)]


def test_iteration_yields_sites():
    events = list(sample_trace())
    assert events[0] == (BranchSite("f", "a"), True)
    assert events[3] == (BranchSite("f", "a"), False)


def test_executed_sites_in_first_appearance_order():
    trace = Trace()
    trace.site_id(BranchSite("f", "never"))  # interned but not executed
    trace.record(BranchSite("f", "b"), True)
    trace.record(BranchSite("f", "a"), True)
    assert trace.executed_sites() == [BranchSite("f", "b"), BranchSite("f", "a")]


def test_taken_counts():
    counts = sample_trace().taken_counts()
    assert counts[BranchSite("f", "a")] == (1, 2)
    assert counts[BranchSite("f", "b")] == (1, 0)


def test_truncated():
    trace = sample_trace()
    short = trace.truncated(2)
    assert len(short) == 2
    assert list(short.events()) == [(0, 1), (1, 0)]
    assert short.sites == trace.sites


def test_from_events_roundtrip():
    trace = sample_trace()
    rebuilt = Trace.from_events(iter(trace))
    assert list(rebuilt.events()) == list(trace.events())


def test_record_id_matches_record():
    trace = Trace()
    site = BranchSite("f", "x")
    sid = trace.site_id(site)
    trace.record_id(sid, True)
    trace.record(site, False)
    assert list(trace.events()) == [(0, 1), (0, 0)]


def test_trace_program_max_branches(alternating_loop):
    trace, result = trace_program(alternating_loop, [50], max_branches=10)
    assert len(trace) == 10
    assert result.branches > 10  # execution continued past the cap
