"""Round-trip and rejection tests for the learned-model wire format."""

import json

import pytest

from repro.ir import BranchSite
from repro.learn import (
    FORMAT_VERSION,
    LearnedConfig,
    LearnedPredictor,
    ModelFormatError,
    fit,
    model_from_json,
    model_to_json,
)
from repro.predictors import evaluate
from repro.profiling import Trace


def build_trace():
    trace = Trace()
    pattern = [True, True, False, True, False, False, True, True]
    for index in range(120):
        trace.record(BranchSite("f", f"b{index % 4}"), pattern[index % 8])
    return trace


CONFIGS = [
    LearnedConfig(kind="perceptron", scope="global", history_bits=4),
    LearnedConfig(kind="perceptron", scope="peraddr", history_bits=4),
    LearnedConfig(kind="perceptron", scope="hybrid", history_bits=3),
    LearnedConfig(kind="logistic", scope="global", history_bits=4, learning_rate=0.5),
    LearnedConfig(kind="logistic", scope="hybrid", history_bits=2, epochs=2),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_roundtrip_reproduces_model_exactly(config):
    trace = build_trace()
    model = fit(trace.columns(), config, 0.5)
    restored = model_from_json(model_to_json(model))
    assert restored.config == model.config
    assert restored.shared == model.shared
    assert restored.sites == model.sites
    # The restored model predicts identically, event for event.
    a = evaluate(LearnedPredictor(model), trace)
    b = evaluate(LearnedPredictor(restored), trace)
    assert a.mispredictions == b.mispredictions
    assert a.per_site == b.per_site
    # Serialization is a fixed point.
    assert model_to_json(restored) == model_to_json(model)


def test_document_carries_version_stamp():
    model = fit(build_trace().columns(), CONFIGS[0], 0.5)
    document = json.loads(model_to_json(model))
    assert document["version"] == FORMAT_VERSION
    assert document["kind"] == "perceptron"
    assert sorted(entry["function"] + ":" + entry["block"]
                  for entry in document["sites"]) == [
        f"f:b{i}" for i in range(4)
    ]


def _valid_document():
    model = fit(build_trace().columns(), CONFIGS[0], 0.5)
    return json.loads(model_to_json(model))


def _reject(document):
    with pytest.raises(ModelFormatError):
        model_from_json(json.dumps(document))


def test_rejects_bad_json():
    with pytest.raises(ModelFormatError, match="bad JSON"):
        model_from_json("{nope")


def test_rejects_non_object_document():
    _reject([1, 2, 3])


def test_rejects_missing_version():
    document = _valid_document()
    del document["version"]
    _reject(document)


def test_rejects_unknown_version():
    document = _valid_document()
    document["version"] = FORMAT_VERSION + 1
    _reject(document)


def test_rejects_bool_version():
    document = _valid_document()
    document["version"] = True
    _reject(document)


def test_rejects_unknown_kind_and_scope():
    document = _valid_document()
    document["kind"] = "svm"
    _reject(document)
    document = _valid_document()
    document["scope"] = "everywhere"
    _reject(document)


def test_rejects_wrong_weight_width():
    document = _valid_document()
    document["shared"]["weights"].append(0)
    _reject(document)
    document = _valid_document()
    document["sites"][0]["weights"] = document["sites"][0]["weights"][:-1]
    _reject(document)


def test_rejects_non_numeric_and_bool_weights():
    document = _valid_document()
    document["shared"]["weights"][0] = "7"
    _reject(document)
    document = _valid_document()
    document["sites"][0]["bias"] = True
    _reject(document)
    document = _valid_document()
    document["shared"]["bias"] = float("inf")
    _reject(document)


def test_rejects_duplicate_and_malformed_sites():
    document = _valid_document()
    document["sites"].append(dict(document["sites"][0]))
    _reject(document)
    document = _valid_document()
    document["sites"][0]["function"] = 7
    _reject(document)
    document = _valid_document()
    del document["sites"][0]["block"]
    _reject(document)


def test_rejects_missing_train_block_and_bad_hyperparams():
    document = _valid_document()
    del document["train"]
    _reject(document)
    document = _valid_document()
    document["train"]["epochs"] = 0
    _reject(document)
    document = _valid_document()
    document["history_bits"] = 99
    _reject(document)


def test_accepts_empty_sites():
    document = _valid_document()
    document["sites"] = []
    model = model_from_json(json.dumps(document))
    assert model.sites == {}
    # Every prediction now routes through the shared model.
    result = evaluate(LearnedPredictor(model), build_trace())
    assert result.events == 120
