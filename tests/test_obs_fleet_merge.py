"""Property: the control-socket wire format loses nothing in a merge.

Fleet mode merges per-worker observer snapshots that travelled as JSON
over unix control sockets (``snapshot_to_dict`` → ``json`` →
``snapshot_from_dict``); :func:`repro.obs.merge_snapshots` folds them
into the fleet-wide view.  Hypothesis generates K arbitrary worker
observers and asserts the round-tripped merge equals the in-process
merge **exactly**:

* counters sum,
* gauges are last-write-wins in worker order,
* histogram bucket maps are bit-identical (bucket indices are
  process-independent), so merged quantiles are exact, not
  approximately re-estimated.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Observer,
    merge_snapshots,
    snapshot_from_dict,
    snapshot_to_dict,
)

metric_names = st.sampled_from(
    [
        "service.requests",
        "service.shard.local",
        "service.shard.proxied",
        "eval.events",
        "cache.lru.hits",
    ]
)
gauge_names = st.sampled_from(
    ["service.inflight", "service.queue_depth", "predictor.best_score"]
)
hist_names = st.sampled_from(["service.latency_ms", "plan.cost"])
counter_values = st.integers(min_value=0, max_value=10**9)
gauge_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
observations = st.lists(
    st.floats(
        min_value=1e-6, max_value=1e7, allow_nan=False, allow_infinity=False
    ),
    max_size=30,
)

worker_states = st.fixed_dictionaries(
    {
        "counters": st.dictionaries(metric_names, counter_values, max_size=5),
        "gauges": st.dictionaries(gauge_names, gauge_values, max_size=3),
        "hists": st.dictionaries(hist_names, observations, max_size=2),
    }
)


def observer_from_state(state) -> Observer:
    observer = Observer()
    for name, value in state["counters"].items():
        observer.add(name, value)
    for name, value in state["gauges"].items():
        observer.set_gauge(name, value)
    for name, values in state["hists"].items():
        for value in values:
            observer.observe(name, value)
    return observer


def hist_buckets(snapshot):
    """Bit-exact comparable view: buckets plus every summary field."""
    return {
        name: (
            dict(hist.buckets),
            hist.zero,
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
        )
        for name, hist in sorted(snapshot.hists.items())
    }


class TestWireMergeEqualsInProcessMerge:
    @given(st.lists(worker_states, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_round_tripped_snapshots_merge_identically(self, states):
        snapshots = [observer_from_state(s).snapshot() for s in states]
        # exactly what the control plane does: serialize on the worker,
        # ship JSON text, parse on the aggregating worker
        wired = [
            snapshot_from_dict(json.loads(json.dumps(snapshot_to_dict(s))))
            for s in snapshots
        ]
        direct = merge_snapshots(snapshots)
        via_wire = merge_snapshots(wired)

        assert via_wire.counters == direct.counters
        assert via_wire.gauges == direct.gauges
        assert hist_buckets(via_wire) == hist_buckets(direct)

    @given(st.lists(worker_states, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_merged_counters_are_the_worker_sums(self, states):
        snapshots = [observer_from_state(s).snapshot() for s in states]
        merged = merge_snapshots(snapshots)
        for snapshot in snapshots:
            for name in snapshot.counters:
                if name in snapshot.gauges:
                    continue
                expected = sum(s.counters.get(name, 0) for s in snapshots)
                assert merged.counters[name] == expected

    @given(st.lists(worker_states, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_gauges_are_last_write_wins_in_worker_order(self, states):
        snapshots = [observer_from_state(s).snapshot() for s in states]
        merged = merge_snapshots(snapshots)
        for name in merged.gauges:
            last = None
            for snapshot in snapshots:
                if name in snapshot.gauges:
                    last = snapshot.counters[name]
            assert merged.counters[name] == last
