"""Unit tests for the instruction set."""

import dataclasses

import pytest

from repro.ir import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Cmp,
    CMP_NEGATE,
    CMPOPS,
    Const,
    In,
    IRError,
    Jump,
    Load,
    Move,
    Out,
    Return,
    Store,
    UnOp,
    is_reg,
    retarget,
)


class TestOperandHelpers:
    def test_register_operand(self):
        assert is_reg("r1")

    def test_immediate_operand(self):
        assert not is_reg(42)

    def test_negative_immediate(self):
        assert not is_reg(-3)


class TestUsesDefs:
    def test_const_defs(self):
        assert Const("x", 5).defs() == ("x",)
        assert Const("x", 5).uses() == ()

    def test_move_register(self):
        instr = Move("a", "b")
        assert instr.uses() == ("b",)
        assert instr.defs() == ("a",)

    def test_move_immediate_has_no_uses(self):
        assert Move("a", 7).uses() == ()

    def test_binop_mixed_operands(self):
        instr = BinOp("d", "add", "x", 3)
        assert instr.uses() == ("x",)
        assert instr.defs() == ("d",)

    def test_binop_two_registers(self):
        assert BinOp("d", "mul", "x", "y").uses() == ("x", "y")

    def test_unop(self):
        instr = UnOp("d", "neg", "s")
        assert instr.uses() == ("s",)
        assert instr.defs() == ("d",)

    def test_cmp(self):
        instr = Cmp("d", "lt", "a", "b")
        assert instr.uses() == ("a", "b")
        assert instr.defs() == ("d",)

    def test_load(self):
        instr = Load("d", "p", 4)
        assert instr.uses() == ("p",)
        assert instr.defs() == ("d",)

    def test_store_defines_nothing(self):
        instr = Store("p", "v", 0)
        assert instr.uses() == ("p", "v")
        assert instr.defs() == ()

    def test_alloc(self):
        assert Alloc("d", "n").uses() == ("n",)
        assert Alloc("d", 8).uses() == ()

    def test_call_with_dest(self):
        instr = Call("d", "f", ("x", 1, "y"))
        assert instr.uses() == ("x", "y")
        assert instr.defs() == ("d",)

    def test_void_call(self):
        assert Call(None, "f", ()).defs() == ()

    def test_in_out(self):
        assert In("d").defs() == ("d",)
        assert Out("v").uses() == ("v",)
        assert Out(3).uses() == ()

    def test_return_value(self):
        assert Return("v").uses() == ("v",)
        assert Return(None).uses() == ()


class TestValidation:
    def test_bad_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("d", "frobnicate", 1, 2)

    def test_bad_unop_rejected(self):
        with pytest.raises(IRError):
            UnOp("d", "sqrt", 1)

    def test_bad_cmp_rejected(self):
        with pytest.raises(IRError):
            Cmp("d", "between", 1, 2)

    def test_bad_branch_op_rejected(self):
        with pytest.raises(IRError):
            Branch("almost", 1, 2, "a", "b")


class TestTerminators:
    def test_jump_targets(self):
        assert Jump("next").targets() == ("next",)

    def test_branch_targets_order(self):
        branch = Branch("lt", "a", "b", "yes", "no")
        assert branch.targets() == ("yes", "no")

    def test_return_has_no_targets(self):
        assert Return(None).targets() == ()

    def test_branch_negation_swaps_targets(self):
        branch = Branch("lt", "a", "b", "yes", "no", predict=True)
        flipped = branch.negated()
        assert flipped.op == "ge"
        assert flipped.taken == "no"
        assert flipped.not_taken == "yes"
        assert flipped.predict is False

    def test_branch_negation_without_prediction(self):
        assert Branch("eq", 1, 2, "a", "b").negated().predict is None

    def test_negation_is_involutive_on_ops(self):
        for op in CMPOPS:
            assert CMP_NEGATE[CMP_NEGATE[op]] == op

    def test_retarget_jump(self):
        jump = retarget(Jump("old"), lambda l: "new" if l == "old" else l)
        assert jump.target == "new"

    def test_retarget_branch_partial(self):
        branch = Branch("eq", 1, 1, "a", "b")
        out = retarget(branch, lambda l: "a2" if l == "a" else l)
        assert out.taken == "a2"
        assert out.not_taken == "b"

    def test_retarget_preserves_metadata(self):
        branch = Branch("eq", 1, 1, "a", "b", pointer=True, predict=False)
        out = retarget(branch, lambda l: l)
        assert out.pointer is True
        assert out.predict is False

    def test_retarget_return_noop(self):
        ret = Return("v")
        assert retarget(ret, lambda l: "x") is ret


class TestImmutability:
    def test_instructions_are_frozen(self):
        instr = Const("x", 1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            instr.value = 2

    def test_replace_builds_new_instance(self):
        branch = Branch("eq", 1, 1, "a", "b")
        annotated = dataclasses.replace(branch, predict=True)
        assert branch.predict is None
        assert annotated.predict is True
