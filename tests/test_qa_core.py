"""Unit tests for the QA invariant/journey machinery — no daemon.

Everything here runs against fakes: a world is anything with a
``conditions`` attribute, and a client is a :class:`ServiceClient`
subclass with the transport overridden.  The live end-to-end paths are
covered by ``test_qa_integration.py``.
"""

import json

import pytest

from repro.qa import (
    CHAOS_SCENARIOS,
    CRITICAL,
    JOURNEYS,
    SKIP,
    WARNING,
    Invariant,
    JourneyError,
    check_invariants,
    default_invariants,
    expect,
    render_text,
    run_suite,
    sabotage_invariant,
    write_json,
)
from repro.qa.core import CONDITIONS
from repro.qa.runner import JourneyResult
from repro.service.client import PredictKey, ServiceClient, ServiceError, unwrap_envelope
from repro.service.handlers import envelope, error_envelope


class FakeWorld:
    def __init__(self, conditions=("accepting", "stable_fleet")):
        self.conditions = set(conditions)


class TestInvariant:
    def test_severity_is_validated(self):
        with pytest.raises(ValueError):
            Invariant("bad", lambda world: True, severity="fatal")

    def test_requires_normalised_to_frozenset(self):
        invariant = Invariant("x", lambda world: True, requires=["accepting"])
        assert invariant.requires == frozenset({"accepting"})


class TestCheckInvariants:
    def run(self, invariants, world=None):
        return check_invariants(world or FakeWorld(), invariants, "j", "s")

    def test_true_and_none_both_pass(self):
        violations, skips, checked = self.run(
            [Invariant("a", lambda w: True), Invariant("b", lambda w: None)]
        )
        assert violations == [] and skips == []
        assert checked == ["a", "b"]

    def test_false_is_a_violation_without_detail(self):
        violations, _, checked = self.run([Invariant("a", lambda w: False)])
        assert len(violations) == 1
        assert violations[0].invariant == "a"
        assert violations[0].detail == {}
        assert violations[0].severity == CRITICAL
        assert checked == ["a"]

    def test_dict_result_becomes_divergent_value_detail(self):
        violations, _, _ = self.run(
            [Invariant("a", lambda w: {"expected": 2, "observed": 3}, severity=WARNING)]
        )
        assert violations[0].detail == {"expected": 2, "observed": 3}
        assert violations[0].severity == WARNING
        # the report names journey, step, invariant and the divergence
        text = str(violations[0])
        assert "j/s" in text and "a" in text and "expected=2" in text

    def test_skip_sentinel_is_recorded_not_checked(self):
        _, skips, checked = self.run([Invariant("a", lambda w: SKIP)])
        assert checked == []
        assert skips[0].reason == "check not evaluable"

    def test_raising_check_is_a_violation(self):
        def boom(world):
            raise RuntimeError("torn")

        violations, _, checked = self.run([Invariant("a", boom)])
        assert checked == ["a"]
        assert violations[0].detail == {"check_raised": "RuntimeError: torn"}

    def test_missing_conditions_skip_names_them(self):
        invariant = Invariant(
            "a", lambda w: False, requires={"accepting", "fleet"}
        )
        _, skips, checked = self.run([invariant], world=FakeWorld({"accepting"}))
        assert checked == []
        assert skips[0].reason == "missing conditions: fleet"

    def test_nothing_raises_out(self):
        violations, _, _ = self.run([Invariant("a", lambda w: 1 / 0)])
        assert "ZeroDivisionError" in violations[0].detail["check_raised"]


class TestExpect:
    def test_passing_expectation_is_silent(self):
        expect(True, "never seen")

    def test_failure_carries_sorted_detail(self):
        with pytest.raises(JourneyError) as excinfo:
            expect(False, "status wrong", status=503, step="warm")
        assert str(excinfo.value) == "status wrong (status=503, step='warm')"


class TestCatalogs:
    def test_default_invariants_are_unique_and_plentiful(self):
        invariants = default_invariants()
        names = [invariant.name for invariant in invariants]
        assert len(names) == len(set(names))
        assert len(names) >= 10
        for invariant in invariants:
            assert invariant.requires <= frozenset(CONDITIONS)

    def test_journeys_cover_the_acceptance_floor(self):
        assert len(JOURNEYS) >= 4
        for name, journey in JOURNEYS.items():
            assert journey.name == name
            assert journey.workers_min >= 1

    def test_chaos_scenarios_reference_real_journeys(self):
        assert len(CHAOS_SCENARIOS) >= 3
        for scenario in CHAOS_SCENARIOS.values():
            assert scenario.base_journey in JOURNEYS

    def test_sabotage_invariant_is_critical_and_not_default(self):
        sabotage = sabotage_invariant()
        assert sabotage.severity == CRITICAL
        assert sabotage.name not in {i.name for i in default_invariants()}

    def test_run_suite_rejects_unknown_names_before_spawning(self):
        with pytest.raises(ValueError):
            run_suite(journey_names=["no-such-journey"])
        with pytest.raises(ValueError):
            run_suite(journey_names=["pipeline"], chaos_names=["no-such-chaos"])


class TestJourneyResult:
    def test_ok_requires_no_error_and_no_critical_violation(self):
        from repro.qa.core import Violation

        result = JourneyResult(journey="j", chaos=None, workers=1)
        assert result.ok
        result.violations.append(Violation("j", "s", "warn", WARNING, {}))
        assert result.ok  # warnings do not fail the journey
        result.violations.append(Violation("j", "s", "crit", CRITICAL, {}))
        assert not result.ok
        failed = JourneyResult(journey="j", chaos=None, workers=1, error="boom")
        assert not failed.ok

    def test_label_includes_chaos(self):
        assert JourneyResult("j", "kill", 2).label == "j+kill"
        assert JourneyResult("j", None, 1).label == "j"


class TestReport:
    def _report(self, ok):
        violation = {
            "journey": "pipeline",
            "step": "replay-warm",
            "invariant": "counters.requests_match_log",
            "severity": CRITICAL,
            "detail": {"counted": 5, "logged": 4},
        }
        return {
            "ok": ok,
            "journeys": [
                {
                    "journey": "pipeline",
                    "chaos": "worker_kill" if not ok else None,
                    "workers": 2,
                    "steps": ["a", "b"],
                    "checks": 20,
                    "violations": [] if ok else [violation],
                    "skips": [],
                    "error": None,
                    "duration_s": 1.5,
                    "ok": ok,
                }
            ],
            "journeys_skipped": [],
            "invariants_checked": ["counters.requests_match_log"],
            "totals": {
                "journeys": 1,
                "steps": 2,
                "checks": 20,
                "critical_violations": 0 if ok else 1,
                "skips": 0,
                "errors": 0,
            },
        }

    def test_render_names_step_invariant_and_divergent_values(self):
        text = render_text(self._report(ok=False))
        assert "FAIL pipeline+worker_kill" in text
        assert "step='replay-warm'" in text
        assert "invariant='counters.requests_match_log'" in text
        assert "counted = 5" in text and "logged = 4" in text
        assert text.strip().endswith("1 journey errors") or "FAIL:" in text

    def test_render_pass_line(self):
        text = render_text(self._report(ok=True))
        assert text.splitlines()[0].startswith("ok  pipeline")
        assert "PASS:" in text

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "report.json"
        write_json(self._report(ok=True), str(path))
        assert json.loads(path.read_text())["ok"] is True
        write_json(self._report(ok=True), None)  # no path: a no-op


class TestEnvelopeHelpers:
    def test_success_envelope_shape(self):
        assert envelope({"x": 1}) == {"v": 1, "ok": True, "data": {"x": 1}}

    def test_error_envelope_includes_retry_after_only_when_given(self):
        body = error_envelope({"code": "overloaded", "message": "m"}, retry_after=1)
        assert body == {
            "v": 1,
            "ok": False,
            "error": {"code": "overloaded", "message": "m", "retry_after": 1},
        }
        plain = error_envelope({"code": "unknown_route", "message": "m"})
        assert "retry_after" not in plain["error"]

    def test_unwrap_envelope(self):
        assert unwrap_envelope(envelope({"a": 1})) == {"a": 1}
        # legacy / raw / error bodies pass through untouched
        assert unwrap_envelope({"status": "ok"}) == {"status": "ok"}
        assert unwrap_envelope({"v": 1, "ok": False, "error": {}}) == {
            "v": 1,
            "ok": False,
            "error": {},
        }
        assert unwrap_envelope([1, 2]) == [1, 2]

    def test_service_error_carries_retry_after(self):
        error = ServiceError(429, "overloaded", "try later", retry_after=2.0)
        assert error.retry_after == 2.0
        assert ServiceError(404, "unknown_route", "nope").retry_after is None


class RecordingClient(ServiceClient):
    """predict_many drives request(); capture its bodies instead of HTTP."""

    def __init__(self, fail_on=None):
        super().__init__(port=0)
        self.bodies = []
        self.fail_on = fail_on

    def request(self, method, path, body=None, request_id=None):
        assert (method, path) == ("POST", "/predict")
        self.bodies.append(body)
        if self.fail_on is not None and body.get("seed_offset") == self.fail_on:
            raise ServiceError(404, "unknown_predictor", "nope")
        return {"echo": body}


class TestPredictMany:
    def test_tuple_and_dict_keys_normalise_in_order(self):
        client = RecordingClient()
        keys: list = [
            ("compress", "profile"),
            ("compress", "profile", 2),
            ("compress", "profile", 2, 7),
            {"name": "compress", "predictor": "profile", "seed_offset": 9},
        ]
        results = client.predict_many(keys)
        assert [body["seed_offset"] for body in client.bodies[2:]] == [7, 9]
        assert client.bodies[0] == {"name": "compress", "predictor": "profile"}
        assert client.bodies[1]["scale"] == 2
        assert [r["echo"] for r in results] == client.bodies

    def test_bad_tuple_arity_raises_value_error(self):
        with pytest.raises(ValueError):
            RecordingClient().predict_many([("compress",)])

    def test_error_names_the_offending_key(self):
        client = RecordingClient(fail_on=7)
        with pytest.raises(ServiceError) as excinfo:
            client.predict_many(
                [("compress", "profile", 1, 6), ("compress", "profile", 1, 7)]
            )
        assert excinfo.value.details["key"]["seed_offset"] == 7
