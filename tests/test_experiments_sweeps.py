"""Tests for the two-level zoo and training-length sweeps."""

import pytest

from repro.experiments import tracelen, twolevel_zoo

NAMES = ["ghostview", "doduc"]


class TestTwoLevelZoo:
    @pytest.fixture(scope="class")
    def result(self):
        return twolevel_zoo.run(scale=1, names=NAMES, history_bits=5)

    def test_all_nine_variants(self, result):
        assert len(result.rows) == 9
        assert set(result.rows) == {
            "GAg", "GAs", "GAp", "SAg", "SAs", "SAp", "PAg", "PAs", "PAp"
        }

    def test_cost_column(self, result):
        assert result.columns[-1] == "cost bits"
        for row in result.rows:
            assert result.data[row][-1] > 0

    def test_gag_is_cheapest(self, result):
        costs = {row: result.data[row][-1] for row in result.rows}
        assert costs["GAg"] == min(costs.values())

    def test_rates_in_bounds(self, result):
        for row in result.rows:
            for value in result.data[row][:-1]:
                assert 0.0 <= value <= 1.0


class TestTraceLength:
    @pytest.fixture(scope="class")
    def result(self):
        return tracelen.run(scale=1, names=NAMES)

    def test_rows_are_fractions(self, result):
        assert result.rows[0] == "1% prefix"
        assert result.rows[-1] == "100% prefix"

    def test_more_training_never_hurts_much(self, result):
        # Longer prefixes should broadly improve (small non-monotonic
        # wiggles allowed: the tables can overfit a tiny prefix).
        first = result.data["1% prefix"]
        last = result.data["100% prefix"]
        for early, late in zip(first, last):
            assert late <= early + 0.02

    def test_full_prefix_matches_table1(self, result):
        from repro.predictors import LoopCorrelationPredictor, evaluate
        from repro.workloads import get_profile, get_trace

        for index, name in enumerate(NAMES):
            trace = get_trace(name, 1)
            profile = get_profile(name, 1)
            direct = evaluate(LoopCorrelationPredictor(profile), trace)
            assert result.data["100% prefix"][index] == pytest.approx(
                direct.misprediction_rate, abs=1e-9
            )
