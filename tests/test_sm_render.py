"""Rendering tests: DOT and ASCII output of state machines."""

from repro.statemachines import (
    CorrelatedMachine,
    MachineState,
    PredictionMachine,
    correlated_to_dot,
    machine_to_ascii,
    machine_to_dot,
)


def alternator() -> PredictionMachine:
    return PredictionMachine(
        (
            MachineState("0", True, 0, 1, (0, 1)),
            MachineState("1", False, 0, 1, (1, 1)),
        ),
        initial=0,
    )


def test_dot_structure():
    dot = machine_to_dot(alternator(), "fig1")
    assert dot.startswith("digraph fig1 {")
    assert dot.rstrip().endswith("}")
    assert 's0 -> s1 [label="1"]' in dot
    assert 's0 -> s0 [label="0"]' in dot


def test_dot_marks_initial_state():
    dot = machine_to_dot(alternator())
    assert "doublecircle" in dot
    assert dot.count("doublecircle") == 1


def test_dot_shows_predictions():
    dot = machine_to_dot(alternator())
    assert "predict T" in dot and "predict N" in dot


def test_ascii_table():
    text = machine_to_ascii(alternator())
    lines = text.splitlines()
    assert len(lines) == 3  # header + 2 states
    assert "0" in lines[1] and "T" in lines[1]


def test_correlated_dot():
    machine = CorrelatedMachine(
        paths=((0b1, 1), (0b01, 2)),
        predictions=(True, False),
        fallback=True,
    )
    dot = correlated_to_dot(machine)
    assert "path 1" in dot
    assert "path 01" in dot
    assert "no match" in dot


def test_joint_machine_dot():
    from repro.ir import BranchSite
    from repro.statemachines import JointLoopMachine, JointState, joint_to_dot

    a, b = BranchSite("f", "a"), BranchSite("f", "b")
    machine = JointLoopMachine(
        (a, b),
        (
            JointState("0", ((a, True), (b, False)), 0, 1, (0, 1)),
            JointState("1", ((a, False), (b, True)), 0, 1, (1, 1)),
        ),
        initial=0,
    )
    dot = joint_to_dot(machine, "joint")
    assert dot.startswith("digraph joint {")
    assert "a: T" in dot and "b: N" in dot
    assert dot.count("doublecircle") == 1
