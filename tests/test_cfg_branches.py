"""Branch classification: intra-loop, loop-exit, non-loop."""

from repro.cfg import BranchClass, branches_of_class, classify_branches
from repro.ir import BranchSite, parse_program


def test_alternating_loop_classes(alternating_loop):
    infos = classify_branches(alternating_loop)
    assert infos[BranchSite("main", "loop")].kind is BranchClass.LOOP_EXIT
    assert infos[BranchSite("main", "body")].kind is BranchClass.INTRA_LOOP


def test_loop_exit_direction_flags(alternating_loop):
    infos = classify_branches(alternating_loop)
    info = infos[BranchSite("main", "loop")]
    # `br lt i, n ? body : done` — the not-taken edge leaves the loop.
    assert info.not_taken_exits is True
    assert info.taken_exits is False


def test_non_loop_branch():
    program = parse_program(
        "func main(n) {\nentry:\n  br lt n, 0 ? a : b\na:\n  ret 1\nb:\n  ret 2\n}"
    )
    infos = classify_branches(program)
    assert infos[BranchSite("main", "entry")].kind is BranchClass.NON_LOOP
    assert infos[BranchSite("main", "entry")].loop is None


def test_nested_loop_branch_uses_innermost(fixed_trip_loop):
    infos = classify_branches(fixed_trip_loop)
    inner = infos[BranchSite("main", "inner_head")]
    assert inner.kind is BranchClass.LOOP_EXIT
    assert inner.loop.header == "inner_head"
    outer = infos[BranchSite("main", "outer_head")]
    assert outer.loop.header == "outer_head"


def test_branches_of_class(correlated_branches):
    infos = classify_branches(correlated_branches)
    intra = branches_of_class(infos, BranchClass.INTRA_LOOP)
    assert BranchSite("main", "body") in intra
    assert BranchSite("main", "second") in intra
    exits = branches_of_class(infos, BranchClass.LOOP_EXIT)
    assert exits == [BranchSite("main", "loop")]


def test_unreachable_branches_ignored():
    program = parse_program(
        "func main(n) {\nentry:\n  ret n\n"
        "dead:\n  br lt n, 0 ? entry : dead\n}"
    )
    assert classify_branches(program) == {}


def test_multiple_functions_classified(recursive_sum):
    infos = classify_branches(recursive_sum)
    assert infos[BranchSite("sum", "entry")].kind is BranchClass.NON_LOOP


def test_branch_exiting_on_both_sides():
    # Both arms leave the loop: still a loop-exit branch.
    program = parse_program(
        """
func main(n) {
entry:
  i = move 0
head:
  i = add i, 1
  br lt i, n ? stay : check
stay:
  jump head
check:
  br gt i, 100 ? far : near
far:
  ret 1
near:
  ret 0
}
"""
    )
    infos = classify_branches(program)
    head = infos[BranchSite("main", "head")]
    assert head.kind is BranchClass.LOOP_EXIT
    assert head.not_taken_exits is True
    assert head.taken_exits is False
    # `check` is outside the loop body entirely.
    assert infos[BranchSite("main", "check")].kind is BranchClass.NON_LOOP
