"""Semi-static predictor tests: profile, correlation, loop, combined."""

import pytest

from repro.ir import BranchSite
from repro.predictors import (
    CorrelationPredictor,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    evaluate,
    semistatic_suite,
)
from repro.profiling import ProfileData, Trace

SITE = BranchSite("f", "b")


def trace_of(bits, site=SITE) -> Trace:
    trace = Trace()
    for bit in bits:
        trace.record(site, bool(bit))
    return trace


class TestProfilePredictor:
    def test_majority_direction(self):
        profile = ProfileData.from_trace(trace_of([1, 1, 1, 0]))
        assert ProfilePredictor(profile).predict(SITE) is True

    def test_tie_predicts_taken(self):
        profile = ProfileData.from_trace(trace_of([1, 0]))
        assert ProfilePredictor(profile).predict(SITE) is True

    def test_unseen_branch_uses_default(self):
        profile = ProfileData.from_trace(trace_of([1]))
        predictor = ProfilePredictor(profile, default=False)
        assert predictor.predict(BranchSite("f", "unknown")) is False

    def test_misprediction_rate_is_minority_share(self):
        trace = trace_of([1, 1, 1, 0] * 25)
        profile = ProfileData.from_trace(trace)
        result = evaluate(ProfilePredictor(profile), trace)
        assert result.misprediction_rate == pytest.approx(0.25)


class TestLoopPredictor:
    def test_alternating_branch_nearly_perfect(self):
        trace = trace_of([1, 0] * 100)
        profile = ProfileData.from_trace(trace)
        result = evaluate(LoopPredictor(profile, 1), trace)
        assert result.mispredictions <= 1  # warmup only

    def test_period_four_needs_depth(self):
        bits = [1, 1, 1, 0] * 100
        trace = trace_of(bits)
        profile = ProfileData.from_trace(trace)
        shallow = evaluate(LoopPredictor(profile, 1), trace)
        deep = evaluate(LoopPredictor(profile, 3), trace)
        assert deep.mispredictions < shallow.mispredictions
        assert deep.mispredictions <= 3

    def test_unseen_pattern_falls_back_to_bias(self):
        train = trace_of([1] * 20)
        profile = ProfileData.from_trace(train)
        predictor = LoopPredictor(profile, 9)
        predictor.reset()
        # Feed an unseen history: after a not-taken the pattern is new.
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is True  # bias

    def test_depth_beyond_profile_rejected(self):
        profile = ProfileData.from_trace(trace_of([1]), local_bits=4)
        with pytest.raises(ValueError):
            LoopPredictor(profile, 9)


class TestCorrelationPredictor:
    def test_cross_branch_correlation(self):
        # Branch b always repeats what branch a just did.
        trace = Trace()
        a, b = BranchSite("f", "a"), BranchSite("f", "b")
        import random

        rng = random.Random(7)
        for _ in range(300):
            coin = rng.random() < 0.5
            trace.record(a, coin)
            trace.record(b, coin)
        profile = ProfileData.from_trace(trace)
        result = evaluate(CorrelationPredictor(profile, 1), trace)
        b_stats = result.per_site[b]
        assert b_stats.mispredictions <= 1

    def test_profile_cannot_catch_it(self):
        trace = Trace()
        a, b = BranchSite("f", "a"), BranchSite("f", "b")
        import random

        rng = random.Random(7)
        for _ in range(300):
            coin = rng.random() < 0.5
            trace.record(a, coin)
            trace.record(b, coin)
        profile = ProfileData.from_trace(trace)
        result = evaluate(ProfilePredictor(profile), trace)
        assert result.per_site[b].rate > 0.3

    def test_depth_beyond_profile_rejected(self):
        profile = ProfileData.from_trace(trace_of([1]), global_bits=2)
        with pytest.raises(ValueError):
            CorrelationPredictor(profile, 3)


class TestLoopCorrelation:
    def _correlated_trace(self):
        trace = Trace()
        a, b, c = (BranchSite("f", x) for x in "abc")
        import random

        rng = random.Random(3)
        for index in range(400):
            coin = rng.random() < 0.5
            trace.record(a, coin)  # random: nothing helps
            trace.record(b, coin)  # correlated with a
            trace.record(c, index % 2 == 0)  # alternating: loop history
        return trace, a, b, c

    def test_chooses_per_branch(self):
        trace, a, b, c = self._correlated_trace()
        profile = ProfileData.from_trace(trace)
        predictor = LoopCorrelationPredictor(profile)
        assert predictor.choice[c] == "loop"
        assert predictor.choice[b] == "correlation"

    def test_beats_both_components(self):
        trace, a, b, c = self._correlated_trace()
        profile = ProfileData.from_trace(trace)
        combined = evaluate(LoopCorrelationPredictor(profile), trace)
        loop_only = evaluate(LoopPredictor(profile, 9), trace)
        corr_only = evaluate(CorrelationPredictor(profile, 1), trace)
        assert combined.mispredictions <= loop_only.mispredictions
        assert combined.mispredictions <= corr_only.mispredictions

    def test_improved_sites(self):
        trace, a, b, c = self._correlated_trace()
        profile = ProfileData.from_trace(trace)
        predictor = LoopCorrelationPredictor(profile)
        improved = predictor.improved_sites(profile)
        assert b in improved and c in improved
        assert a not in improved or improved[a] < improved[b]


def test_suite_composition():
    profile = ProfileData.from_trace(trace_of([1, 0] * 10))
    suite = semistatic_suite(profile)
    names = [p.name for p in suite]
    assert names == [
        "profile",
        "1-bit-correlation",
        "1-bit-loop",
        "9-bit-loop",
        "loop-correlation",
    ]
