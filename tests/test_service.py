"""Contract tests for the prediction service against a live server.

Every test talks HTTP to a real ``ServiceServer`` bound to an
ephemeral port — the same code path production traffic takes.  A
module-scoped warm server serves the read-mostly contract tests; the
coalescing/overload/drain tests each boot a private server so they can
pin the worker-pool configuration and patch compute latency.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    shutdown_gracefully,
    start_background,
)
from repro.service import handlers as handlers_module
from repro.service.loadgen import parse_mix, percentile, run_load
from repro.statemachines import machine_from_json

BENCH = "compress"


@pytest.fixture(scope="module")
def server():
    server, _ = start_background(ServiceConfig(port=0, threads=2, queue_limit=8))
    yield server
    shutdown_gracefully(server, drain_seconds=5)


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


@pytest.fixture
def fresh_server(request):
    """A private server with test-chosen config (torn down per test)."""
    servers = []

    def boot(**overrides):
        config = ServiceConfig(port=0, **overrides)
        server, _ = start_background(config)
        servers.append(server)
        return server

    yield boot
    for server in servers:
        try:
            shutdown_gracefully(server, drain_seconds=5)
        except OSError:
            pass


class TestContract:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["service_version"] == 1
        assert payload["uptime_seconds"] >= 0

    def test_benchmarks_lists_the_suite(self, client):
        names = [b["name"] for b in client.benchmarks()["benchmarks"]]
        assert BENCH in names
        assert len(names) == 8

    def test_artifacts_summary_then_lru_hit(self, client):
        first = client.artifacts(BENCH)
        assert first["events"] > 0
        assert first["steps"] > 0
        assert first["sites"] > 0
        assert first["top_sites"]
        assert first["top_sites"][0]["executions"] >= first["top_sites"][-1]["executions"]
        again = client.artifacts(BENCH)
        assert again["source"] == "lru"
        assert {k: v for k, v in again.items() if k != "source"} == {
            k: v for k, v in first.items() if k != "source"
        }

    def test_predict_profile(self, client):
        payload = client.predict(BENCH, "profile")
        assert payload["predictor"] == "profile"
        assert payload["events"] > 0
        assert 0.0 <= payload["misprediction_rate"] <= 1.0
        assert payload["sites"]
        for site in payload["sites"]:
            assert site["executions"] >= site["mispredictions"]
            # profile predictions are per-site constants
            assert isinstance(site["predicted_taken"], bool)

    def test_predict_unknown_predictor_lists_zoo(self, client):
        with pytest.raises(ServiceError) as info:
            client.predict(BENCH, "oracle")
        assert info.value.status == 404
        assert info.value.code == "unknown_predictor"
        assert "profile" in info.value.details["available"]

    def test_machine_document_round_trips(self, client):
        payload = client.machine(BENCH)
        assert payload["n_states"] >= 2
        assert payload["family"] in ("loop", "correlated")
        assert payload["correct"] > payload["profile_correct"] or payload["correct"] > 0
        machine = machine_from_json(json.dumps(payload["machine"]))
        assert payload["machine"]["version"] == payload["machine_format_version"]
        assert machine.n_states == payload["n_states"]

    def test_machine_unknown_site(self, client):
        with pytest.raises(ServiceError) as info:
            client.machine(BENCH, site="main:nonexistent")
        assert info.value.status == 404
        assert info.value.code == "unknown_site"

    def test_plan_curve(self, client):
        payload = client.plan(BENCH, max_size_factor=2.0)
        assert payload["branches"] > 0
        assert payload["curve"]
        assert payload["final"]["misprediction_rate"] <= (
            payload["profile_misprediction_rate"]
        )
        assert payload["curve"][0]["misprediction_rate"] == (
            payload["profile_misprediction_rate"]
        )
        for point in payload["curve"]:
            assert point["size_factor"] <= 2.0 + 1e-9

    def test_stats_exposes_service_counters(self, client):
        client.healthz()
        payload = client.stats()
        assert payload["counters"]["service.requests"] > 0
        assert "service.requests.healthz" in payload["counters"]
        assert payload["service"]["queue_capacity"] == 10
        assert payload["service"]["draining"] is False


class TestErrors:
    def test_unknown_benchmark_404(self, client):
        status, document = client.request_raw(
            "POST", "/artifacts", {"name": "quake"}
        )
        assert status == 404
        assert document["error"]["code"] == "unknown_benchmark"
        assert BENCH in document["error"]["details"]["available"]

    def test_missing_body_400(self, client):
        status, document = client.request_raw("POST", "/artifacts")
        assert status == 400
        assert document["error"]["code"] == "bad_request"

    def test_malformed_json_400(self, client, server):
        connection = client._connect()
        connection.request(
            "POST",
            "/artifacts",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in document["error"]["message"]

    def test_non_object_body_400(self, client):
        connection = client._connect()
        connection.request("POST", "/artifacts", body=b"[1, 2]")
        response = connection.getresponse()
        document = json.loads(response.read())
        assert response.status == 400
        assert "object" in document["error"]["message"]

    def test_bad_types_400(self, client):
        for body in (
            {"name": BENCH, "scale": "big"},
            {"name": BENCH, "scale": True},
            {"name": BENCH, "scale": 0},
            {"name": 7},
        ):
            status, document = client.request_raw("POST", "/artifacts", body)
            assert status == 400, body
            assert document["error"]["code"] == "bad_request"

    def test_unknown_route_404_lists_endpoints(self, client):
        status, document = client.request_raw("GET", "/bogus")
        assert status == 404
        assert document["error"]["code"] == "unknown_route"
        assert "POST /artifacts" in document["error"]["details"]["available"]

    def test_method_not_allowed_405(self, client):
        status, document = client.request_raw("POST", "/healthz", {"x": 1})
        assert status == 405
        assert document["error"]["code"] == "method_not_allowed"

    def test_oversized_body_413(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            sock.sendall(
                b"POST /artifacts HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: 99999999\r\n"
                b"\r\n"
            )
            response = sock.recv(65536)
        assert b"413" in response.split(b"\r\n", 1)[0]

    def test_internal_errors_return_structured_500(self, fresh_server, monkeypatch):
        server = fresh_server(threads=2, queue_limit=4)

        def explode(name, scale, seed_offset):
            raise ValueError("synthetic failure")

        monkeypatch.setattr(handlers_module, "_artifact_summary", explode)
        with ServiceClient(port=server.port) as client:
            status, document = client.request_raw(
                "POST", "/artifacts", {"name": BENCH}
            )
        assert status == 500
        assert document["error"]["code"] == "internal"
        assert "synthetic failure" in document["error"]["message"]


class TestCoalescing:
    def test_concurrent_identical_requests_compute_once(
        self, fresh_server, monkeypatch
    ):
        server = fresh_server(threads=4, queue_limit=16)
        # The obs counters are process-global and other tests in this
        # module already touched the artifact cache — assert on deltas.
        with ServiceClient(port=server.port) as probe:
            before = probe.stats()["counters"]
        calls = []
        real = handlers_module._artifact_summary

        def slow_summary(name, scale, seed_offset):
            calls.append(1)
            time.sleep(0.3)
            return real(name, scale, seed_offset)

        monkeypatch.setattr(handlers_module, "_artifact_summary", slow_summary)
        clients_n = 6
        barrier = threading.Barrier(clients_n)
        sources = []
        errors = []

        def worker():
            try:
                with ServiceClient(port=server.port, timeout=30) as client:
                    barrier.wait(5)
                    sources.append(client.artifacts(BENCH)["source"])
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(clients_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert len(calls) == 1, "identical concurrent requests must coalesce"
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == clients_n - 1
        with ServiceClient(port=server.port) as client:
            counters = client.stats()["counters"]

        def delta(name):
            return counters.get(name, 0) - before.get(name, 0)

        assert delta("service.coalesce.hits") == clients_n - 1
        assert delta("service.cache.artifacts.misses") == 1


class TestBackpressure:
    def test_overload_sheds_with_429(self, fresh_server, monkeypatch):
        server = fresh_server(threads=1, queue_limit=0)
        release = threading.Event()
        real = handlers_module._artifact_summary

        def slow_summary(name, scale, seed_offset):
            release.wait(10)
            return real(name, scale, seed_offset)

        monkeypatch.setattr(handlers_module, "_artifact_summary", slow_summary)
        statuses = []
        lock = threading.Lock()
        started = threading.Barrier(4)

        def worker(seed_offset):
            with ServiceClient(port=server.port, timeout=30) as client:
                started.wait(5)
                # Distinct seed offsets so coalescing cannot absorb the
                # overflow — each request needs its own pool slot.
                status, _ = client.request_raw(
                    "POST",
                    "/artifacts",
                    {"name": BENCH, "seed_offset": seed_offset},
                )
                with lock:
                    statuses.append(status)

        threads = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with lock:
                if statuses.count(429) >= 1 and len(statuses) >= 3:
                    break
            time.sleep(0.01)
        release.set()
        for thread in threads:
            thread.join(30)
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        assert all(status in (200, 429) for status in statuses)
        # Rejections are observable.
        with ServiceClient(port=server.port) as client:
            counters = client.stats()["counters"]
        assert counters["service.rejected.overload"] >= 1

    def test_draining_returns_structured_503(self, fresh_server):
        server = fresh_server(threads=2, queue_limit=4)
        server.state.begin_drain()
        with ServiceClient(port=server.port) as client:
            status, document = client.request_raw("GET", "/healthz")
        assert status == 503
        assert document["error"]["code"] == "draining"


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(self, fresh_server, monkeypatch):
        server = fresh_server(threads=2, queue_limit=4)
        entered = threading.Event()
        real = handlers_module._artifact_summary

        def slow_summary(name, scale, seed_offset):
            entered.set()
            time.sleep(0.5)
            return real(name, scale, seed_offset)

        monkeypatch.setattr(handlers_module, "_artifact_summary", slow_summary)
        outcome = {}

        def in_flight():
            with ServiceClient(port=server.port, timeout=30) as client:
                outcome["response"] = client.artifacts(BENCH)

        requester = threading.Thread(target=in_flight)
        requester.start()
        assert entered.wait(10), "request never reached the handler"
        drained = shutdown_gracefully(server, drain_seconds=10)
        requester.join(10)
        # The in-flight request completed with a real answer...
        assert drained is True
        assert outcome["response"]["events"] > 0
        # ...and the listening socket is gone.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port), timeout=0.5)


class TestLoadgen:
    def test_parse_mix(self):
        assert parse_mix("artifacts=2,healthz=1") == [
            ("artifacts", 2),
            ("healthz", 1),
        ]
        assert parse_mix("healthz") == [("healthz", 1)]
        assert parse_mix("artifacts=0,healthz=3") == [("healthz", 3)]
        with pytest.raises(ValueError):
            parse_mix("bogus=1")
        with pytest.raises(ValueError):
            parse_mix("artifacts=x")
        with pytest.raises(ValueError):
            parse_mix("artifacts=0")

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 100.0
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_short_run_against_live_server(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            clients=2,
            duration=0.4,
            mix="artifacts=2,healthz=1",
            benchmark=BENCH,
        )
        assert report["requests"] > 0
        assert report["five_xx"] == 0
        assert report["transport_errors"] == 0
        assert report["req_per_s"] > 0
        assert set(report["statuses"]) == {"200"}
        assert report["p99_ms"] >= report["p50_ms"] >= 0
        assert report["server"]["requests"] >= report["requests"]


class TestEnvelopeContract:
    """The v1 response envelope on the wire, and the client's view of it."""

    def test_success_envelope_shape(self, client):
        status, document = client.request_raw("GET", "/healthz")
        assert status == 200
        assert document["v"] == 1
        assert document["ok"] is True
        assert document["data"]["status"] == "ok"

    def test_raw_flag_returns_legacy_body(self, client):
        status, document = client.request_raw("GET", "/healthz?raw=1")
        assert status == 200
        assert "v" not in document
        assert document["status"] == "ok"

    def test_error_envelope_keeps_inner_error_shape(self, client):
        status, document = client.request_raw("GET", "/bogus")
        assert status == 404
        assert document["v"] == 1
        assert document["ok"] is False
        assert document["error"]["code"] == "unknown_route"
        # retry_after is reserved for backpressure/drain statuses
        assert "retry_after" not in document["error"]

    def test_raw_flag_returns_legacy_error_body(self, client):
        status, document = client.request_raw("GET", "/bogus?raw=1")
        assert status == 404
        assert "v" not in document
        assert document["error"]["code"] == "unknown_route"

    def test_draining_503_carries_retry_after_in_band(self, fresh_server):
        server = fresh_server(threads=2, queue_limit=8)
        server.state.begin_drain()
        with ServiceClient(port=server.port) as client:
            status, document = client.request_raw("GET", "/healthz")
            assert status == 503
            assert document["error"]["code"] == "draining"
            assert document["error"]["retry_after"] == 1
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/healthz")
            assert excinfo.value.code == "draining"
            assert excinfo.value.retry_after == 1

    def test_request_unwraps_to_payload(self, client):
        payload = client.request("GET", "/healthz")
        assert "v" not in payload
        assert payload["status"] == "ok"

    def test_predict_many_round_trip(self, client):
        results = client.predict_many(
            [
                (BENCH, "profile"),
                {"name": BENCH, "predictor": "profile", "seed_offset": 31},
            ]
        )
        assert len(results) == 2
        assert all(r["predictor"] == "profile" for r in results)
        assert all(r["events"] > 0 for r in results)
