"""Loop-exit machine tests: combs, parity variant, best-of search."""

from repro.profiling import PatternTable
from repro.statemachines import (
    best_loop_exit_machine,
    comb_machine,
    parity_machine,
)


def exit_table(trip_counts, exit_on_taken=False, bits: int = 9) -> PatternTable:
    """Pattern table of a loop-exit branch for the given trip counts.

    With ``exit_on_taken=False`` the branch is taken while the loop
    continues and not-taken on exit (the `br lt i, n ? body : done`
    shape).
    """
    table = PatternTable(bits)
    history = 0
    mask = (1 << bits) - 1
    stay = 0 if exit_on_taken else 1
    for trips in trip_counts:
        for iteration in range(trips):
            is_exit = iteration == trips - 1
            bit = (1 - stay) if is_exit else stay
            table.add(history, bit)
            history = ((history << 1) | bit) & mask
    return table


class TestCombMachine:
    def test_fixed_trip_count_perfect(self):
        table = exit_table([4] * 200)
        scored = comb_machine(table, 5, exit_on_taken=False)
        assert scored.mispredictions == 0

    def test_too_few_states_miss_the_exit(self):
        table = exit_table([4] * 200)
        scored = comb_machine(table, 3, exit_on_taken=False)
        assert scored.misprediction_rate > 0.2

    def test_exit_on_taken_polarity(self):
        table = exit_table([4] * 200, exit_on_taken=True)
        scored = comb_machine(table, 5, exit_on_taken=True)
        # The all-zero initial history reads as "all stays" under this
        # polarity, costing at most one warmup miss.
        assert scored.mispredictions <= 1

    def test_simulation_agrees_with_score(self):
        trips = [4] * 100
        table = exit_table(trips)
        scored = comb_machine(table, 5, exit_on_taken=False)
        outcomes = []
        for t in trips:
            outcomes.extend([True] * (t - 1) + [False])
        correct, total = scored.machine.simulate(outcomes)
        assert abs(correct - scored.correct) <= table.bits

    def test_initial_state_is_exit_state(self):
        table = exit_table([3] * 50)
        scored = comb_machine(table, 4, exit_on_taken=False)
        assert scored.machine.initial == 0
        assert scored.machine.states[0].name == "0"

    def test_single_state_is_profile(self):
        table = exit_table([4] * 100)
        scored = comb_machine(table, 1, exit_on_taken=False)
        assert scored.correct == max(table.total())


class TestParityMachine:
    def test_even_trip_counts(self):
        # Trips alternate among even numbers beyond the chain depth:
        # exits always happen after an odd number of stays.
        import random

        rng = random.Random(5)
        trips = [rng.choice([4, 6, 8]) for _ in range(150)]
        table = exit_table(trips)
        parity = parity_machine(table, 4, exit_on_taken=False)
        comb = comb_machine(table, 4, exit_on_taken=False)
        assert parity.correct > comb.correct

    def test_fixed_small_trip_count_no_benefit(self):
        table = exit_table([3] * 100)
        parity = parity_machine(table, 5, exit_on_taken=False)
        comb = comb_machine(table, 5, exit_on_taken=False)
        assert comb.correct >= parity.correct

    def test_state_count(self):
        table = exit_table([4] * 50)
        scored = parity_machine(table, 5, exit_on_taken=False)
        assert scored.machine.n_states == 5

    def test_rejects_tiny_machines(self):
        import pytest

        with pytest.raises(ValueError):
            parity_machine(exit_table([3] * 10), 2, exit_on_taken=False)

    def test_parity_simulation_consistency(self):
        import random

        rng = random.Random(9)
        trips = [rng.choice([4, 6]) for _ in range(200)]
        table = exit_table(trips)
        scored = parity_machine(table, 4, exit_on_taken=False)
        outcomes = []
        for t in trips:
            outcomes.extend([True] * (t - 1) + [False])
        correct, total = scored.machine.simulate(outcomes)
        # The all-stay charging approximation allows some slack.
        assert abs(correct - scored.correct) <= table.bits + total // 50


class TestBestLoopExit:
    def test_picks_enough_states(self):
        table = exit_table([4] * 200)
        scored = best_loop_exit_machine(table, 8, exit_on_taken=False)
        assert scored.mispredictions == 0
        assert scored.machine.n_states <= 5

    def test_picks_parity_when_it_wins(self):
        import random

        rng = random.Random(5)
        trips = [rng.choice([4, 6, 8]) for _ in range(150)]
        table = exit_table(trips)
        scored = best_loop_exit_machine(table, 4, exit_on_taken=False)
        assert scored.machine.kind == "loop-exit-parity"

    def test_never_worse_than_profile(self):
        import random

        rng = random.Random(17)
        trips = [rng.randint(1, 12) for _ in range(150)]
        table = exit_table(trips)
        scored = best_loop_exit_machine(table, 6, exit_on_taken=False)
        assert scored.correct >= max(table.total())
