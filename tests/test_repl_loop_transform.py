"""Loop replication transform tests (Section 5, Figure 1)."""

import pytest

from repro.cfg import CFG, LoopForest
from repro.interp import run_program
from repro.ir import BranchSite, IRError, validate_program
from repro.profiling import ProfileData, trace_program
from repro.replication import replicate_loop_branch
from repro.statemachines import best_intra_machine, best_loop_exit_machine


def loop_of(program, label):
    function = program.main_function()
    forest = LoopForest(CFG.from_function(function))
    return function, forest.loop_of(label)


def alternator_machine(program, n_args=100):
    trace, _ = trace_program(program, [n_args])
    profile = ProfileData.from_trace(trace)
    return best_intra_machine(profile.local[BranchSite("main", "body")], 2)


class TestFigure1:
    def test_semantics_preserved(self, alternating_loop):
        expected = run_program(alternating_loop.copy(), [100]).value
        scored = alternator_machine(alternating_loop)
        function, loop = loop_of(alternating_loop, "body")
        work = alternating_loop.copy()
        replicate_loop_branch(
            work.main_function(),
            LoopForest(CFG.from_function(work.main_function())).loop_of("body"),
            "body",
            scored.machine,
        )
        validate_program(work)
        assert run_program(work, [100]).value == expected

    def test_unreachable_copies_discarded(self, alternating_loop):
        scored = alternator_machine(alternating_loop)
        work = alternating_loop.copy()
        result = replicate_loop_branch(
            work.main_function(),
            LoopForest(CFG.from_function(work.main_function())).loop_of("body"),
            "body",
            scored.machine,
        )
        # The whole original loop body dies, plus — Figure 1's "2b" and
        # "3a" — one odd and one even *copy*.
        removed_copies = {l.split("@")[0] for l in result.removed if "@" in l}
        assert removed_copies == {"odd", "even"}
        removed_originals = {l for l in result.removed if "@" not in l}
        assert removed_originals == {"loop", "body", "odd", "even", "cont"}

    def test_size_accounting(self, alternating_loop):
        scored = alternator_machine(alternating_loop)
        work = alternating_loop.copy()
        result = replicate_loop_branch(
            work.main_function(),
            LoopForest(CFG.from_function(work.main_function())).loop_of("body"),
            "body",
            scored.machine,
        )
        assert result.size_after == work.size()
        assert result.size_after > result.size_before

    def test_predictions_planted_per_state(self, alternating_loop):
        scored = alternator_machine(alternating_loop)
        work = alternating_loop.copy()
        result = replicate_loop_branch(
            work.main_function(),
            LoopForest(CFG.from_function(work.main_function())).loop_of("body"),
            "body",
            scored.machine,
        )
        predictions = set()
        for state_index, label in result.copies["body"].items():
            branch = work.main_function().block(label).branch
            assert branch.predict is not None
            predictions.add(branch.predict)
        # The alternating branch gets both directions across its copies.
        assert predictions == {True, False}

    def test_surviving_sites(self, alternating_loop):
        scored = alternator_machine(alternating_loop)
        work = alternating_loop.copy()
        result = replicate_loop_branch(
            work.main_function(),
            LoopForest(CFG.from_function(work.main_function())).loop_of("body"),
            "body",
            scored.machine,
        )
        sites = result.surviving_sites(BranchSite("main", "body"))
        assert len(sites) == 2
        for site in sites:
            assert site.block in work.main_function().blocks


class TestLoopExitReplication:
    def test_fixed_trip_loop(self, fixed_trip_loop):
        expected = run_program(fixed_trip_loop.copy(), [50]).value
        trace, _ = trace_program(fixed_trip_loop.copy(), [50])
        profile = ProfileData.from_trace(trace)
        site = BranchSite("main", "inner_head")
        scored = best_loop_exit_machine(
            profile.local[site], 5, exit_on_taken=False
        )
        work = fixed_trip_loop.copy()
        function = work.main_function()
        forest = LoopForest(CFG.from_function(function))
        replicate_loop_branch(function, forest.loop_of("inner_head"), "inner_head", scored.machine)
        validate_program(work)
        assert run_program(work, [50]).value == expected

    def test_errors(self, alternating_loop):
        work = alternating_loop.copy()
        function = work.main_function()
        forest = LoopForest(CFG.from_function(function))
        loop = forest.loop_of("body")
        scored = alternator_machine(alternating_loop)
        with pytest.raises(IRError):
            replicate_loop_branch(function, loop, "done", scored.machine)
        with pytest.raises(IRError):
            replicate_loop_branch(function, loop, "cont", scored.machine)


class TestRepeatedReplication:
    def test_replicating_twice_still_correct(self, alternating_loop):
        expected = run_program(alternating_loop.copy(), [60]).value
        scored = alternator_machine(alternating_loop)
        work = alternating_loop.copy()
        function = work.main_function()
        forest = LoopForest(CFG.from_function(function))
        result = replicate_loop_branch(
            function, forest.loop_of("body"), "body", scored.machine
        )
        # Replicate one of the copies again (cascading transform).
        copy_label = next(iter(result.copies["body"].values()))
        forest = LoopForest(CFG.from_function(function))
        replicate_loop_branch(
            function, forest.loop_of(copy_label), copy_label, scored.machine
        )
        validate_program(work)
        assert run_program(work, [60]).value == expected
