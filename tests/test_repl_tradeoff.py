"""Trade-off curve tests (the figures' greedy walk)."""

from repro.ir import BranchSite, parse_program
from repro.profiling import ProfileData, trace_program
from repro.replication import ReplicationPlanner, tradeoff_curve


def planner_for(program, args, max_states=6):
    trace, _ = trace_program(program.copy(), args)
    profile = ProfileData.from_trace(trace)
    return ReplicationPlanner(program, profile, max_states)


TWO_LOOPS = """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop1:
  br lt i, n ? body1 : mid
body1:
  f1 = mod i, 2
  br eq f1, 0 ? a1 : b1
a1:
  acc = add acc, 1
  jump cont1
b1:
  acc = add acc, 2
  jump cont1
cont1:
  i = add i, 1
  jump loop1
mid:
  j = move 0
loop2:
  br lt j, n ? body2 : done
body2:
  f2 = mod j, 2
  br eq f2, 0 ? a2 : b2
a2:
  acc = add acc, 3
  jump cont2
b2:
  acc = add acc, 4
  jump cont2
cont2:
  j = add j, 1
  jump loop2
done:
  ret acc
}
"""


class TestCurveShape:
    def test_starts_at_profile(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        points = tradeoff_curve(planner)
        assert points[0].size_factor == 1.0
        assert points[0].step is None
        profile_rate = (
            planner.profile_mispredictions() / planner.total_executions()
        )
        assert points[0].misprediction_rate == profile_rate

    def test_monotone_improvement(self, correlated_branches):
        points = tradeoff_curve(planner_for(correlated_branches, [100]))
        for earlier, later in zip(points, points[1:]):
            assert later.mispredictions < earlier.mispredictions
            assert later.size >= earlier.size

    def test_steps_record_upgrades(self, alternating_loop):
        points = tradeoff_curve(planner_for(alternating_loop, [100]))
        assert len(points) >= 2
        site, n_states = points[1].step
        assert site == BranchSite("main", "body")
        assert n_states >= 2

    def test_size_cap_respected(self, correlated_branches):
        capped = tradeoff_curve(
            planner_for(correlated_branches, [100]), max_size_factor=1.5
        )
        assert all(p.size_factor <= 1.5 for p in capped)

    def test_different_loops_add_not_multiply(self):
        program = parse_program(TWO_LOOPS)
        planner = planner_for(program, [60])
        points = tradeoff_curve(planner)
        # Improving both alternating branches (one in each loop) must
        # roughly double the two loop bodies, not square them.
        final = points[-1]
        assert final.size_factor < 3.0
        assert final.mispredictions < points[0].mispredictions / 2

    def test_curve_ends_when_no_gain(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        points = tradeoff_curve(planner)
        # Running again from the final state must add nothing: the last
        # point's mispredictions equal the planner's best.
        best = planner.best_misprediction_rate(6)
        assert abs(points[-1].misprediction_rate - best) < 0.05


class TestGreedyOrder:
    def test_cheap_wins_first(self):
        # One alternating branch in a tiny loop and one in a huge loop:
        # the tiny loop's upgrade has a better gain/size ratio.
        program = parse_program(
            """
func main(n) {
entry:
  i = move 0
  acc = move 0
small:
  br lt i, n ? sbody : mid
sbody:
  f = mod i, 2
  br eq f, 0 ? sa : sb
sa:
  acc = add acc, 1
  jump scont
sb:
  acc = add acc, 2
  jump scont
scont:
  i = add i, 1
  jump small
mid:
  j = move 0
big:
  br lt j, n ? bbody : done
bbody:
  g = mod j, 2
  pad1 = add acc, 0
  pad2 = add pad1, 0
  pad3 = add pad2, 0
  pad4 = add pad3, 0
  pad5 = add pad4, 0
  pad6 = add pad5, 0
  pad7 = add pad6, 0
  pad8 = add pad7, 0
  br eq g, 0 ? ba : bb
ba:
  acc = add acc, 3
  jump bcont
bb:
  acc = add acc, 4
  jump bcont
bcont:
  j = add j, 1
  jump big
done:
  ret acc
}
"""
        )
        planner = planner_for(program, [60])
        points = tradeoff_curve(planner)
        first_upgrade_site, _ = points[1].step
        assert first_upgrade_site == BranchSite("main", "sbody")
