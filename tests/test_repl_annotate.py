"""Annotation planting and end-to-end misprediction measurement."""

import pytest

from repro.ir import BranchSite, parse_program
from repro.profiling import ProfileData, trace_program
from repro.replication import (
    annotate_profile_predictions,
    clear_predictions,
    measure_annotated,
)


def trained(program, args):
    trace, _ = trace_program(program.copy(), args)
    return ProfileData.from_trace(trace)


def test_annotate_sets_majority(alternating_loop):
    profile = trained(alternating_loop, [100])
    work = alternating_loop.copy()
    count = annotate_profile_predictions(work, profile)
    assert count == 2
    loop_branch = work.main_function().block("loop").branch
    assert loop_branch.predict is True  # taken 100/101 times


def test_annotate_respects_existing(alternating_loop):
    import dataclasses

    profile = trained(alternating_loop, [100])
    work = alternating_loop.copy()
    block = work.main_function().block("loop")
    block.terminator = dataclasses.replace(block.branch, predict=False)
    annotate_profile_predictions(work, profile)
    assert work.main_function().block("loop").branch.predict is False


def test_annotate_default_for_unexecuted():
    program = parse_program(
        "func main(n) {\nentry:\n  br gt n, 1000 ? rare : common\n"
        "rare:\n  ret 1\ncommon:\n  ret 0\n}"
    )
    # Train on a run that never reaches `rare`... entry executes, so use
    # an empty profile instead.
    empty_profile = ProfileData()
    work = program.copy()
    annotate_profile_predictions(work, empty_profile, default=False)
    assert work.main_function().block("entry").branch.predict is False


def test_clear_predictions(alternating_loop):
    profile = trained(alternating_loop, [100])
    work = alternating_loop.copy()
    annotate_profile_predictions(work, profile)
    clear_predictions(work)
    for block in work.main_function():
        if block.branch is not None:
            assert block.branch.predict is None


def test_measure_matches_profile_rate(alternating_loop):
    profile = trained(alternating_loop, [100])
    work = alternating_loop.copy()
    annotate_profile_predictions(work, profile)
    measurement = measure_annotated(work, [100])
    # body alternates (50 wrong), loop mispredicts once at exit.
    assert measurement.mispredictions == 51
    assert measurement.events == 201


def test_measure_per_site(alternating_loop):
    profile = trained(alternating_loop, [100])
    work = alternating_loop.copy()
    annotate_profile_predictions(work, profile)
    measurement = measure_annotated(work, [100])
    executions, wrong = measurement.per_site[BranchSite("main", "body")]
    assert executions == 100
    assert wrong == 50


def test_measure_empty_run():
    program = parse_program("func main() {\nentry:\n  ret\n}")
    measurement = measure_annotated(program)
    assert measurement.events == 0
    assert measurement.misprediction_rate == 0.0
