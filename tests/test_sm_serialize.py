"""Machine serialisation tests."""

import pytest

from repro.ir import BranchSite
from repro.profiling import PatternTable
from repro.statemachines import (
    CorrelatedMachine,
    JointLoopMachine,
    JointState,
    MachineFormatError,
    MachineState,
    PredictionMachine,
    best_intra_machine,
    machine_from_json,
    machine_to_json,
)


def alternator_machine() -> PredictionMachine:
    table = PatternTable(9)
    history = 0
    for index in range(300):
        bit = index % 2
        table.add(history, bit)
        history = ((history << 1) | bit) & 0x1FF
    return best_intra_machine(table, 2).machine


def test_prediction_machine_roundtrip():
    machine = alternator_machine()
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    outcomes = [i % 2 == 0 for i in range(50)]
    assert loaded.simulate(outcomes) == machine.simulate(outcomes)


def test_correlated_machine_roundtrip():
    machine = CorrelatedMachine(
        paths=((0b1, 1), (0b10, 2)),
        predictions=(True, False),
        fallback=True,
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    for history in range(16):
        assert loaded.predict(history) == machine.predict(history)


def test_joint_machine_roundtrip():
    a, b = BranchSite("f", "a"), BranchSite("f", "b")
    machine = JointLoopMachine(
        (a, b),
        (
            JointState("0", ((a, True), (b, False)), 0, 1, (0, 1)),
            JointState("1", ((a, False), (b, True)), 0, 1, (1, 1)),
        ),
        initial=0,
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    events = [(a, True), (b, False), (a, False), (b, True)] * 5
    assert loaded.simulate(events) == machine.simulate(events)


def test_bad_json_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json("{not json")


def test_unknown_type_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json('{"type": "quantum"}')


def test_missing_fields_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json('{"type": "prediction", "states": [{}]}')


def test_pattern_none_roundtrips():
    machine = PredictionMachine(
        (MachineState("*", True, 0, 0, None),), 0, "profile"
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded.states[0].pattern is None
