"""Machine serialisation tests."""

import json

import pytest

from repro.ir import BranchSite
from repro.profiling import PatternTable
from repro.statemachines import (
    CorrelatedMachine,
    JointLoopMachine,
    JointState,
    MachineFormatError,
    MachineState,
    PredictionMachine,
    best_intra_machine,
    machine_from_json,
    machine_to_json,
)
from repro.statemachines.serialize import FORMAT_VERSION


def alternator_machine() -> PredictionMachine:
    table = PatternTable(9)
    history = 0
    for index in range(300):
        bit = index % 2
        table.add(history, bit)
        history = ((history << 1) | bit) & 0x1FF
    return best_intra_machine(table, 2).machine


def test_prediction_machine_roundtrip():
    machine = alternator_machine()
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    outcomes = [i % 2 == 0 for i in range(50)]
    assert loaded.simulate(outcomes) == machine.simulate(outcomes)


def test_correlated_machine_roundtrip():
    machine = CorrelatedMachine(
        paths=((0b1, 1), (0b10, 2)),
        predictions=(True, False),
        fallback=True,
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    for history in range(16):
        assert loaded.predict(history) == machine.predict(history)


def test_joint_machine_roundtrip():
    a, b = BranchSite("f", "a"), BranchSite("f", "b")
    machine = JointLoopMachine(
        (a, b),
        (
            JointState("0", ((a, True), (b, False)), 0, 1, (0, 1)),
            JointState("1", ((a, False), (b, True)), 0, 1, (1, 1)),
        ),
        initial=0,
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded == machine
    events = [(a, True), (b, False), (a, False), (b, True)] * 5
    assert loaded.simulate(events) == machine.simulate(events)


def correlated_machine() -> CorrelatedMachine:
    return CorrelatedMachine(
        paths=((0b1, 1), (0b10, 2)),
        predictions=(True, False),
        fallback=True,
    )


def joint_machine() -> JointLoopMachine:
    a, b = BranchSite("f", "a"), BranchSite("f", "b")
    return JointLoopMachine(
        (a, b),
        (
            JointState("0", ((a, True), (b, False)), 0, 1, (0, 1)),
            JointState("1", ((a, False), (b, True)), 0, 1, (1, 1)),
        ),
        initial=0,
    )


ALL_KINDS = (alternator_machine, correlated_machine, joint_machine)


def test_bad_json_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json("{not json")


def test_non_object_document_rejected():
    for text in ("[1, 2, 3]", '"prediction"', "17", "null"):
        with pytest.raises(MachineFormatError):
            machine_from_json(text)


def test_unknown_type_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json(json.dumps({"version": FORMAT_VERSION, "type": "quantum"}))


def test_missing_fields_rejected():
    with pytest.raises(MachineFormatError):
        machine_from_json(
            json.dumps(
                {"version": FORMAT_VERSION, "type": "prediction", "states": [{}]}
            )
        )


@pytest.mark.parametrize("make", ALL_KINDS, ids=lambda fn: fn.__name__)
def test_documents_carry_the_format_version(make):
    document = json.loads(machine_to_json(make()))
    assert document["version"] == FORMAT_VERSION


@pytest.mark.parametrize("make", ALL_KINDS, ids=lambda fn: fn.__name__)
def test_versioned_round_trip(make):
    machine = make()
    assert machine_from_json(machine_to_json(machine)) == machine


@pytest.mark.parametrize("make", ALL_KINDS, ids=lambda fn: fn.__name__)
def test_missing_version_rejected(make):
    document = json.loads(machine_to_json(make()))
    del document["version"]
    with pytest.raises(MachineFormatError, match="version"):
        machine_from_json(json.dumps(document))


@pytest.mark.parametrize("make", ALL_KINDS, ids=lambda fn: fn.__name__)
@pytest.mark.parametrize("version", [0, FORMAT_VERSION + 1, "1", None, 1.5])
def test_unknown_version_rejected(make, version):
    document = json.loads(machine_to_json(make()))
    document["version"] = version
    with pytest.raises(MachineFormatError, match="version"):
        machine_from_json(json.dumps(document))


@pytest.mark.parametrize("make", ALL_KINDS, ids=lambda fn: fn.__name__)
def test_malformed_payload_rejected_not_crashed(make):
    """Structurally broken documents of every kind raise MachineFormatError,
    never a bare KeyError/TypeError/ValueError."""
    document = json.loads(machine_to_json(make()))
    breakages = []
    for key in document:
        if key in ("version", "type"):
            continue
        broken = dict(document)
        del broken[key]
        breakages.append(broken)
        breakages.append(dict(document, **{key: {"bogus": True}}))
    for broken in breakages:
        with pytest.raises(MachineFormatError):
            machine_from_json(json.dumps(broken))


def test_pattern_none_roundtrips():
    machine = PredictionMachine(
        (MachineState("*", True, 0, 0, None),), 0, "profile"
    )
    loaded = machine_from_json(machine_to_json(machine))
    assert loaded.states[0].pattern is None
