"""Shared fixtures: small programs exercising each branch class."""

from __future__ import annotations

import os

import pytest

from repro.ir import parse_program


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the artifact disk cache at a session-temporary directory so
    tests never litter the working tree (and stay warm within a run)."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

#: A loop with an alternating intra-loop branch — the paper's Figure 1
#: motivating example.
ALTERNATING_LOOP = """
func main(n) {
entry:
  i = move 0
  flip = move 0
  acc = move 0
loop:
  br lt i, n ? body : done
body:
  flip = sub 1, flip
  br eq flip, 1 ? odd : even
odd:
  acc = add acc, 1
  jump cont
even:
  acc = add acc, 2
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  out acc
  ret acc
}
"""

#: A loop with a fixed trip count of 4 nested in an outer loop — the
#: loop-exit machine target.
FIXED_TRIP_LOOP = """
func main(n) {
entry:
  outer = move 0
  acc = move 0
outer_head:
  br lt outer, n ? inner_init : done
inner_init:
  j = move 0
inner_head:
  br lt j, 4 ? inner_body : outer_next
inner_body:
  acc = add acc, j
  j = add j, 1
  jump inner_head
outer_next:
  outer = add outer, 1
  jump outer_head
done:
  out acc
  ret acc
}
"""

#: A correlated pair of branches outside any loop structure is hard to
#: build (everything interesting repeats), so this program re-tests the
#: same condition inside a loop: the second branch is fully determined
#: by the first.
CORRELATED_BRANCHES = """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? body : done
body:
  parity = mod i, 2
  br eq parity, 0 ? even1 : odd1
even1:
  acc = add acc, 1
  jump second
odd1:
  acc = add acc, 2
  jump second
second:
  br eq parity, 0 ? even2 : odd2
even2:
  acc = add acc, 10
  jump cont
odd2:
  acc = add acc, 20
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  out acc
  ret acc
}
"""

#: Calls, recursion and memory.
RECURSIVE_SUM = """
func sum(k) {
entry:
  br le k, 0 ? base : rec
base:
  ret 0
rec:
  k1 = sub k, 1
  rest = call sum(k1)
  total = add rest, k
  ret total
}

func main(n) {
entry:
  result = call sum(n)
  out result
  ret result
}
"""


@pytest.fixture
def alternating_loop():
    return parse_program(ALTERNATING_LOOP)


@pytest.fixture
def fixed_trip_loop():
    return parse_program(FIXED_TRIP_LOOP)


@pytest.fixture
def correlated_branches():
    return parse_program(CORRELATED_BRANCHES)


@pytest.fixture
def recursive_sum():
    return parse_program(RECURSIVE_SUM)
