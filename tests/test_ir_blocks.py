"""Unit tests for blocks, functions, programs and branch sites."""

import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    BranchSite,
    Const,
    Function,
    IRError,
    Jump,
    Program,
    Return,
)


def make_function() -> Function:
    function = Function("f", ["n"])
    entry = BasicBlock("entry", [Const("x", 1)], Branch("lt", "x", "n", "a", "b"))
    function.add_block(entry)
    function.add_block(BasicBlock("a", [], Jump("b")))
    function.add_block(BasicBlock("b", [], Return("x")))
    return function


class TestBasicBlock:
    def test_successors_of_branch(self):
        block = BasicBlock("x", [], Branch("eq", 1, 1, "a", "b"))
        assert block.successors() == ("a", "b")

    def test_successors_requires_terminator(self):
        with pytest.raises(IRError):
            BasicBlock("x").successors()

    def test_branch_property(self):
        block = BasicBlock("x", [], Jump("a"))
        assert block.branch is None
        block2 = BasicBlock("y", [], Branch("eq", 1, 1, "a", "b"))
        assert block2.branch is block2.terminator

    def test_size_counts_terminator(self):
        block = BasicBlock("x", [Const("a", 1), Const("b", 2)], Return(None))
        assert block.size() == 3

    def test_copy_is_independent(self):
        block = BasicBlock("x", [Const("a", 1)], Return(None))
        clone = block.copy("y")
        clone.instrs.append(Const("b", 2))
        assert len(block.instrs) == 1
        assert clone.label == "y"


class TestFunction:
    def test_first_block_becomes_entry(self):
        assert make_function().entry == "entry"

    def test_duplicate_label_rejected(self):
        function = make_function()
        with pytest.raises(IRError):
            function.add_block(BasicBlock("a"))

    def test_block_lookup(self):
        assert make_function().block("a").label == "a"

    def test_missing_block_raises(self):
        with pytest.raises(IRError):
            make_function().block("nope")

    def test_remove_block(self):
        function = make_function()
        function.remove_block("a")
        assert "a" not in function.blocks

    def test_cannot_remove_entry(self):
        with pytest.raises(IRError):
            make_function().remove_block("entry")

    def test_size(self):
        assert make_function().size() == 4

    def test_branch_blocks(self):
        assert [b.label for b in make_function().branch_blocks()] == ["entry"]

    def test_fresh_label_avoids_collisions(self):
        function = make_function()
        assert function.fresh_label("new") == "new"
        label = function.fresh_label("a")
        assert label != "a" and label not in function.blocks

    def test_copy_deep_enough(self):
        function = make_function()
        clone = function.copy()
        clone.block("a").instrs.append(Const("z", 0))
        assert len(function.block("a").instrs) == 0


class TestProgram:
    def test_add_and_lookup(self):
        program = Program()
        program.add_function(make_function())
        assert program.function("f").name == "f"

    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(make_function())
        with pytest.raises(IRError):
            program.add_function(make_function())

    def test_missing_function_raises(self):
        with pytest.raises(IRError):
            Program().function("ghost")

    def test_branch_sites(self):
        program = Program(main="f")
        program.add_function(make_function())
        assert program.branch_sites() == [BranchSite("f", "entry")]

    def test_size_sums_functions(self):
        program = Program(main="f")
        program.add_function(make_function())
        assert program.size() == 4

    def test_copy_independent(self):
        program = Program(main="f")
        program.add_function(make_function())
        clone = program.copy()
        clone.function("f").block("a").instrs.append(Const("q", 1))
        assert len(program.function("f").block("a").instrs) == 0


class TestBranchSite:
    def test_accessors(self):
        site = BranchSite("f", "b1")
        assert site.function == "f"
        assert site.block == "b1"

    def test_equality_and_hash(self):
        assert BranchSite("f", "b") == BranchSite("f", "b")
        assert hash(BranchSite("f", "b")) == hash(("f", "b"))

    def test_tuple_compatibility(self):
        assert BranchSite("f", "b") == ("f", "b")

    def test_str(self):
        assert str(BranchSite("f", "b")) == "f:b"

    def test_ordering(self):
        assert BranchSite("a", "z") < BranchSite("b", "a")
