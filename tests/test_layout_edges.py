"""Edge-profile tests: exact instrumented counts and trace estimates."""

from repro.cfg import CFG
from repro.layout import EdgeProfile, edge_profile_from_trace, profile_edges
from repro.profiling import trace_program


def test_exact_edge_counts(alternating_loop):
    profiles = profile_edges(alternating_loop, [10])
    main = profiles["main"]
    # loop -> body taken 10 times, loop -> done once.
    assert main.count("loop", "body") == 10
    assert main.count("loop", "done") == 1
    # body alternates between odd and even.
    assert main.count("body", "odd") == 5
    assert main.count("body", "even") == 5
    # entry jumps into the loop once.
    assert main.count("entry", "loop") == 1
    # cont closes every iteration.
    assert main.count("cont", "loop") == 10


def test_exact_counts_across_functions(recursive_sum):
    profiles = profile_edges(recursive_sum, [5])
    assert profiles["sum"].count("entry", "rec") == 5
    assert profiles["sum"].count("entry", "base") == 1


def test_block_frequency(alternating_loop):
    profiles = profile_edges(alternating_loop, [10])
    cfg = CFG.from_function(alternating_loop.main_function())
    assert profiles["main"].block_frequency("body", cfg) == 10
    assert profiles["main"].block_frequency("done", cfg) == 1


def test_hot_edges_sorted(alternating_loop):
    profiles = profile_edges(alternating_loop, [50])
    hot = profiles["main"].hot_edges()
    counts = [count for _, count in hot]
    assert counts == sorted(counts, reverse=True)


def test_trace_estimate_matches_branch_edges(alternating_loop):
    trace, _ = trace_program(alternating_loop.copy(), [10])
    estimated = edge_profile_from_trace(alternating_loop, trace)["main"]
    exact = profile_edges(alternating_loop, [10])["main"]
    # Branch-sourced edges are identical.
    for edge in (("loop", "body"), ("loop", "done"), ("body", "odd")):
        assert estimated.count(*edge) == exact.count(*edge)
    # Jump edges are estimated within the loop.
    assert estimated.count("cont", "loop") == exact.count("cont", "loop")


def test_profile_total(alternating_loop):
    profiles = profile_edges(alternating_loop, [10])
    # Every executed control transfer is recorded.
    assert profiles["main"].total() > 30


def test_empty_profile():
    profile = EdgeProfile("f")
    assert profile.count("a", "b") == 0
    assert profile.total() == 0
    assert profile.hot_edges() == []
