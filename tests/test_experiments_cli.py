"""Experiment CLI tests: argument validation, cache subcommand, and
cold-vs-warm determinism."""

import pytest

from repro.experiments.cli import main
from repro.workloads.artifacts import (
    cache_stats,
    clear_memory_cache,
    reset_cache_stats,
)


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    reset_cache_stats()
    yield
    clear_memory_cache()
    reset_cache_stats()


class TestValidation:
    def test_unknown_name_rejected_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--names", "compress,quake"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "quake" in err
        assert "compress" in err  # the valid-choices listing
        assert "abalone" in err

    def test_csv_dir_rejected_for_non_figures_target(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--csv-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "--csv-dir" in capsys.readouterr().err

    def test_cache_action_invalid_elsewhere(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "clear"])

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0", "--names", "compress"])


class TestCacheSubcommand:
    def test_stats_on_empty_cache(self, fresh_cache, capsys):
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries: 0 file(s)" in out

    def test_stats_after_run_lists_entries(self, fresh_cache, capsys):
        assert main(["table1", "--names", "compress", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 2 file(s)" in out
        assert "compress-s1-o0-h8-v" in out

    def test_clear_removes_entries(self, fresh_cache, capsys):
        assert main(["table1", "--names", "compress", "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "entries: 0 file(s)" in capsys.readouterr().out


class TestColdWarmDeterminism:
    def test_warm_run_is_byte_identical_and_interpreter_free(
        self, fresh_cache, capsys
    ):
        assert main(["table1", "--names", "compress", "--jobs", "1"]) == 0
        cold = capsys.readouterr().out
        assert cache_stats().interpreter_runs == 1
        clear_memory_cache()
        reset_cache_stats()
        assert main(["table1", "--names", "compress", "--jobs", "1"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert cache_stats().interpreter_runs == 0

    def test_timings_go_to_stderr_not_stdout(self, fresh_cache, capsys):
        assert (
            main(["table1", "--names", "compress", "--jobs", "1", "--timings"]) == 0
        )
        captured = capsys.readouterr()
        assert "[timings]" in captured.err
        assert "[timings]" not in captured.out


class TestTelemetryExports:
    def test_snapshot_and_metrics_out(self, fresh_cache, capsys, tmp_path):
        from repro.obs import snapshot_from_dict, validate_exposition

        snap_path = tmp_path / "snap.json"
        metrics_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "table1",
                    "--names",
                    "compress",
                    "--snapshot-out",
                    str(snap_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        capsys.readouterr()  # table output, not under test here

        import json

        snapshot = snapshot_from_dict(json.loads(snap_path.read_text()))
        assert snapshot.counters.get("engine.events", 0) > 0
        assert "engine.scan_seconds" in snapshot.hists

        text = metrics_path.read_text()
        validate_exposition(text)
        assert "# TYPE repro_engine_scan_seconds histogram" in text
