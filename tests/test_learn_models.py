"""Learned-model unit behaviour: config validation, name parsing,
training determinism, and the shared-model fallback for unseen sites."""

import os
import subprocess
import sys

import pytest

from repro.ir import BranchSite
from repro.learn import (
    DEFAULT_SPLIT,
    LearnedConfig,
    LearnedPredictor,
    default_learned_configs,
    fit,
    model_to_json,
    parse_learned_name,
    training_cut,
)
from repro.profiling import Trace


def build_trace(n=60):
    trace = Trace()
    for index in range(n):
        trace.record(BranchSite("f", f"b{index % 3}"), index % 4 != 0)
    return trace


# -- config validation -------------------------------------------------------


def test_config_defaults_and_name():
    config = LearnedConfig()
    assert config.name == "learned-perceptron-global-8bit"
    assert config.feature_bits == 8
    assert LearnedConfig(scope="hybrid", history_bits=4).feature_bits == 8


def test_config_theta_default_follows_width():
    config = LearnedConfig(history_bits=8)
    assert config.resolved_theta(8) == int(1.93 * 8 + 14)
    assert LearnedConfig(theta=3).resolved_theta(8) == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "tree"},
        {"scope": "galactic"},
        {"history_bits": 0},
        {"history_bits": 13},
        {"scope": "hybrid", "history_bits": 7},  # 14 feature bits > cap
        {"epochs": 0},
        {"epochs": 9},
        {"theta": -1},
        {"learning_rate": 0.0},
        {"learning_rate": float("nan")},
        {"weight_limit": 0},
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        LearnedConfig(**kwargs)


# -- name parsing ------------------------------------------------------------


def test_parse_learned_name_roundtrips_defaults():
    for config in default_learned_configs():
        parsed = parse_learned_name(config.name)
        assert parsed is not None
        assert parsed.kind == config.kind
        assert parsed.scope == config.scope
        assert parsed.history_bits == config.history_bits


@pytest.mark.parametrize(
    "name", ["profile", "two-level-4k", "learned", "learned-perceptron-global-8"]
)
def test_parse_learned_name_ignores_foreign_names(name):
    assert parse_learned_name(name) is None


def test_parse_learned_name_rejects_bad_width():
    with pytest.raises(ValueError):
        parse_learned_name("learned-perceptron-global-99bit")


# -- training ----------------------------------------------------------------


def test_training_cut_bounds():
    assert training_cut(100, 0.5) == 50
    assert training_cut(100, 1.0) == 100
    assert training_cut(0, 0.5) == 0
    for bad in (0.0, -0.5, 1.5, float("nan"), True, "half"):
        with pytest.raises(ValueError):
            training_cut(100, bad)


def test_fit_learns_only_prefix_sites():
    trace = Trace()
    for index in range(40):
        trace.record(BranchSite("f", "early"), True)
    trace.record(BranchSite("f", "late"), True)
    model = fit(trace.columns(), LearnedConfig(history_bits=2), split=0.5)
    assert BranchSite("f", "early") in model.sites
    assert BranchSite("f", "late") not in model.sites


def test_unseen_site_uses_shared_model():
    trace = build_trace()
    model = fit(trace.columns(), LearnedConfig(history_bits=3), split=1.0)
    predictor = LearnedPredictor(model)
    predictor.reset()
    foreign = BranchSite("elsewhere", "b0")
    assert foreign not in model.sites
    # Mostly-taken training stream → zero-history shared guess is taken.
    assert predictor.predict(foreign) is True


def test_fit_is_deterministic_within_process():
    trace = build_trace()
    config = LearnedConfig(kind="logistic", scope="hybrid", history_bits=3)
    a = model_to_json(fit(trace.columns(), config, DEFAULT_SPLIT))
    b = model_to_json(fit(trace.columns(), config, DEFAULT_SPLIT))
    assert a == b


_HASHSEED_SCRIPT = r"""
from repro.ir import BranchSite
from repro.learn import LearnedConfig, fit, model_to_json
from repro.profiling import Trace

trace = Trace()
for index in range(60):
    trace.record(BranchSite("f", "b%d" % (index % 3)), index % 4 != 0)
for config in (
    LearnedConfig(),
    LearnedConfig(kind="logistic", scope="peraddr", history_bits=4),
    LearnedConfig(scope="hybrid", history_bits=3),
):
    print(model_to_json(fit(trace.columns(), config, 0.5)))
"""


def test_fit_is_pythonhashseed_independent():
    outputs = []
    for seed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]


def test_epochs_refine_weights():
    trace = build_trace(200)
    one = fit(trace.columns(), LearnedConfig(history_bits=4, epochs=1), 1.0)
    two = fit(trace.columns(), LearnedConfig(history_bits=4, epochs=2), 1.0)
    assert model_to_json(one) != model_to_json(two)


def test_predictor_contract_predict_update_reset():
    trace = build_trace()
    model = fit(trace.columns(), LearnedConfig(scope="peraddr", history_bits=3), 1.0)
    predictor = LearnedPredictor(model)
    predictor.reset()
    site = trace.sites[0]
    first = predictor.predict(site)
    for _ in range(3):
        predictor.update(site, not first)
    predictor.reset()
    # Reset restores the zero-history decision.
    assert predictor.predict(site) is first
