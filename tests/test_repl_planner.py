"""ReplicationPlanner tests: option construction and Table 5 queries."""

from repro.cfg import BranchClass
from repro.ir import BranchSite
from repro.profiling import ProfileData, trace_program
from repro.replication import ReplicationPlanner
from repro.statemachines import CorrelatedMachine, PredictionMachine


def planner_for(program, args, max_states=6):
    trace, _ = trace_program(program.copy(), args)
    profile = ProfileData.from_trace(trace)
    return ReplicationPlanner(program, profile, max_states)


class TestPlanConstruction:
    def test_every_executed_branch_planned(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        assert set(planner.plans) == {
            BranchSite("main", "loop"),
            BranchSite("main", "body"),
        }

    def test_alternating_branch_improvable(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        plan = planner.plans[BranchSite("main", "body")]
        assert plan.improvable
        option = plan.best_option(2)
        assert option is not None
        assert option.correct > plan.profile_correct

    def test_options_strictly_improve(self, correlated_branches):
        planner = planner_for(correlated_branches, [100])
        for plan in planner.plans.values():
            correct_values = [o.correct for o in plan.options]
            assert correct_values == sorted(set(correct_values))

    def test_option_families_match_machines(self, correlated_branches):
        planner = planner_for(correlated_branches, [100])
        for plan in planner.plans.values():
            for option in plan.options:
                machine = option.scored.machine
                if option.family == "correlated":
                    assert isinstance(machine, CorrelatedMachine)
                else:
                    assert isinstance(machine, PredictionMachine)

    def test_loop_plan_metadata(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        plan = planner.plans[BranchSite("main", "body")]
        assert plan.loop_key == ("main", "loop")
        assert plan.loop_size > 0

    def test_non_loop_branch_gets_correlated_only(self, recursive_sum):
        planner = planner_for(recursive_sum, [30])
        plan = planner.plans[BranchSite("sum", "entry")]
        assert plan.info.kind is BranchClass.NON_LOOP
        for option in plan.options:
            assert option.family == "correlated"

    def test_correlated_chosen_for_correlated_loop_branch(
        self, correlated_branches
    ):
        # The `second` branch is perfectly determined by the global
        # history; the correlated family should beat local history.
        planner = planner_for(correlated_branches, [100])
        plan = planner.plans[BranchSite("main", "second")]
        best = plan.best_option(4)
        assert best is not None
        # either family may win at equal accuracy; accuracy must be ~perfect
        assert best.correct >= plan.executions - 2


class TestQueries:
    def test_best_misprediction_monotone(self, correlated_branches):
        planner = planner_for(correlated_branches, [100])
        rates = [planner.best_misprediction_rate(n) for n in range(2, 7)]
        for earlier, later in zip(rates, rates[1:]):
            assert later <= earlier + 1e-12

    def test_best_never_worse_than_profile(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        profile_rate = planner.profile_mispredictions() / planner.total_executions()
        assert planner.best_misprediction_rate(6) <= profile_rate

    def test_improved_branch_count(self, alternating_loop):
        planner = planner_for(alternating_loop, [100])
        assert planner.improved_branch_count() >= 1
        assert len(planner.improvable_plans()) == planner.improved_branch_count()

    def test_total_executions_matches_trace(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [100])
        profile = ProfileData.from_trace(trace)
        planner = ReplicationPlanner(alternating_loop, profile)
        assert planner.total_executions() == len(trace)
