"""Tail-duplication transform tests for correlated branches."""

from repro.interp import run_program
from repro.ir import BranchSite, parse_program, validate_program
from repro.profiling import ProfileData, trace_program
from repro.replication import (
    duplicate_correlated_branch,
    estimate_duplication_cost,
)
from repro.statemachines import CorrelatedMachine, best_correlated_machine


def correlated_program():
    """The `second` branch repeats the decision of the `body` branch."""
    return parse_program(
        """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? body : done
body:
  parity = mod i, 2
  br eq parity, 0 ? even1 : odd1
even1:
  acc = add acc, 1
  jump second
odd1:
  acc = add acc, 2
  jump second
second:
  br eq parity, 0 ? even2 : odd2
even2:
  acc = add acc, 10
  jump cont
odd2:
  acc = add acc, 20
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  out acc
  ret acc
}
"""
    )


def trained_machine(program, site_label="second"):
    trace, _ = trace_program(program.copy(), [100])
    profile = ProfileData.from_trace(trace)
    site = BranchSite("main", site_label)
    return best_correlated_machine(profile.global_tables[site], 3), profile


class TestDuplication:
    def test_semantics_preserved(self):
        program = correlated_program()
        expected = run_program(program.copy(), [100]).value
        scored, _ = trained_machine(program)
        work = program.copy()
        duplicate_correlated_branch(work.main_function(), "second", scored.machine)
        validate_program(work)
        assert run_program(work, [100]).value == expected

    def test_copies_get_distinct_predictions(self):
        program = correlated_program()
        scored, _ = trained_machine(program)
        assert scored.mispredictions == 0  # perfectly correlated
        work = program.copy()
        result = duplicate_correlated_branch(
            work.main_function(), "second", scored.machine
        )
        predictions = set()
        for site in result.surviving_sites():
            branch = work.main_function().block(site.block).branch
            predictions.add(branch.predict)
        assert predictions == {True, False}

    def test_size_grows(self):
        program = correlated_program()
        scored, _ = trained_machine(program)
        work = program.copy()
        result = duplicate_correlated_branch(
            work.main_function(), "second", scored.machine
        )
        assert result.size_after > result.size_before

    def test_cost_estimate_matches_actual_growth(self):
        program = correlated_program()
        scored, _ = trained_machine(program)
        depth = max(length for _, length in scored.machine.paths)
        estimate = estimate_duplication_cost(
            program.main_function(), "second", depth
        )
        work = program.copy()
        result = duplicate_correlated_branch(
            work.main_function(), "second", scored.machine, depth
        )
        actual_growth = result.size_after - result.size_before
        # The estimate is an upper bound: pruning may reclaim copies.
        assert actual_growth <= estimate

    def test_zero_depth_machine_annotates_only(self):
        program = correlated_program()
        machine = CorrelatedMachine((), (), fallback=True)
        work = program.copy()
        result = duplicate_correlated_branch(work.main_function(), "second", machine)
        assert result.size_after == result.size_before
        assert work.main_function().block("second").branch.predict is True

    def test_measured_misprediction_improves(self):
        from repro.replication import annotate_profile_predictions, measure_annotated

        program = correlated_program()
        scored, profile = trained_machine(program)

        baseline = program.copy()
        annotate_profile_predictions(baseline, profile)
        base = measure_annotated(baseline, [100])

        work = program.copy()
        annotate_profile_predictions(work, profile)
        duplicate_correlated_branch(work.main_function(), "second", scored.machine)
        improved = measure_annotated(work, [100])
        assert improved.mispredictions < base.mispredictions

    def test_paths_through_plain_blocks(self):
        # The decision is separated from the target by a join block.
        program = parse_program(
            """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? body : done
body:
  parity = mod i, 2
  br eq parity, 0 ? a : b
a:
  acc = add acc, 1
  jump gap
b:
  acc = add acc, 2
  jump gap
gap:
  acc = add acc, 0
  jump second
second:
  br eq parity, 0 ? c : d
c:
  acc = add acc, 10
  jump cont
d:
  acc = add acc, 20
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  ret acc
}
"""
        )
        expected = run_program(program.copy(), [40]).value
        trace, _ = trace_program(program.copy(), [40])
        profile = ProfileData.from_trace(trace)
        site = BranchSite("main", "second")
        scored = best_correlated_machine(profile.global_tables[site], 3)
        work = program.copy()
        duplicate_correlated_branch(work.main_function(), "second", scored.machine)
        validate_program(work)
        assert run_program(work, [40]).value == expected
