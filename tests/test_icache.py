"""Instruction-cache simulator and cost-function tests."""

import pytest

from repro.icache import (
    CacheConfig,
    CostModel,
    InstructionCache,
    assign_addresses,
    evaluate_cost,
    simulate_icache,
)
from repro.profiling import ProfileData, trace_program
from repro.replication import annotate_profile_predictions


class TestCacheConfig:
    def test_capacity(self):
        assert CacheConfig(64, 8).capacity_words == 512

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CacheConfig(lines=3)
        with pytest.raises(ValueError):
            CacheConfig(line_words=5)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            CacheConfig(lines=0)


class TestAddressAssignment:
    def test_contiguous_disjoint(self, alternating_loop):
        addresses = assign_addresses(alternating_loop)
        ranges = sorted(addresses.values())
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2  # contiguous, no overlap
        assert ranges[0][0] == 0
        assert ranges[-1][1] == alternating_loop.size()

    def test_block_size_matches(self, alternating_loop):
        addresses = assign_addresses(alternating_loop)
        function = alternating_loop.main_function()
        for block in function:
            start, end = addresses[("main", block.label)]
            assert end - start == block.size()


class TestInstructionCache:
    def test_cold_misses(self):
        cache = InstructionCache(CacheConfig(4, 4))
        cache.touch_range(0, 8)  # lines 0 and 1
        assert cache.misses == 2
        assert cache.accesses == 2

    def test_hits_on_repeat(self):
        cache = InstructionCache(CacheConfig(4, 4))
        cache.touch_range(0, 8)
        cache.touch_range(0, 8)
        assert cache.misses == 2
        assert cache.accesses == 4
        assert cache.miss_rate == 0.5

    def test_conflict_eviction(self):
        cache = InstructionCache(CacheConfig(2, 4))
        cache.touch_range(0, 4)   # line 0 -> index 0
        cache.touch_range(8, 12)  # line 2 -> index 0, evicts
        cache.touch_range(0, 4)   # miss again
        assert cache.misses == 3

    def test_reset(self):
        cache = InstructionCache(CacheConfig(2, 4))
        cache.touch_range(0, 4)
        cache.reset()
        assert cache.misses == 0 and cache.accesses == 0

    def test_empty_range(self):
        cache = InstructionCache(CacheConfig(2, 4))
        cache.touch_range(5, 5)
        assert cache.accesses == 0


class TestSimulation:
    def test_small_program_fits(self, alternating_loop):
        result = simulate_icache(
            alternating_loop, CacheConfig(64, 8), [200]
        )
        # The whole program fits: only cold misses.
        assert result.misses <= alternating_loop.size()
        assert result.miss_rate < 0.01

    def test_tiny_cache_thrashes(self, recursive_sum):
        big = simulate_icache(recursive_sum, CacheConfig(64, 8), [50])
        tiny = simulate_icache(recursive_sum, CacheConfig(1, 2), [50])
        assert tiny.miss_rate > big.miss_rate

    def test_result_fields(self, alternating_loop):
        result = simulate_icache(alternating_loop, CacheConfig(8, 4), [20])
        assert result.program_words == alternating_loop.size()
        assert result.accesses > 0


class TestCostFunction:
    def test_model_arithmetic(self):
        model = CostModel(misprediction_penalty=4, miss_penalty=20)
        assert model.cycles(1000, 10, 5) == 1000 + 40 + 100

    def test_evaluate_cost(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [100])
        profile = ProfileData.from_trace(trace)
        annotate_profile_predictions(alternating_loop, profile)
        report = evaluate_cost(alternating_loop, [100])
        assert report.instructions > 0
        assert report.branch_events == 201
        assert report.cycles > report.instructions
        assert report.cycles_per_instruction > 1.0

    def test_better_prediction_lowers_cycles(self, alternating_loop):
        from repro.ir import BranchSite
        from repro.replication import apply_replication
        from repro.statemachines import best_intra_machine

        trace, _ = trace_program(alternating_loop.copy(), [200])
        profile = ProfileData.from_trace(trace)
        baseline_program = apply_replication(alternating_loop, [], profile).program
        site = BranchSite("main", "body")
        scored = best_intra_machine(profile.local[site], 2)
        improved_program = apply_replication(
            alternating_loop, [(site, scored.machine)], profile
        ).program
        # A generous cache isolates the prediction effect.
        config = CacheConfig(256, 8)
        baseline = evaluate_cost(baseline_program, [200], cache_config=config)
        improved = evaluate_cost(improved_program, [200], cache_config=config)
        assert improved.mispredictions < baseline.mispredictions
        assert improved.cycles < baseline.cycles
