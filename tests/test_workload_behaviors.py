"""Per-workload behavioural checks: each stand-in must exhibit the
branch-behaviour class DESIGN.md claims for it."""

import pytest

from repro.cfg import BranchClass, classify_branches
from repro.ir import BranchSite
from repro.predictors import (
    CorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    evaluate,
)
from repro.replication import ReplicationPlanner
from repro.workloads import get_profile, get_program, get_trace


class TestGhostview:
    """Mode-flag correlation: paint branches follow setter commands."""

    def test_paint_branch_improvable(self):
        planner = ReplicationPlanner(
            get_program("ghostview"), get_profile("ghostview", 1), 4
        )
        site = BranchSite("main", "paint_check")
        plan = planner.plans[site]
        assert plan.improvable
        best = plan.best_option(4)
        assert best.correct > plan.profile_correct

    def test_segment_loop_is_loop_exit(self):
        infos = classify_branches(get_program("ghostview"))
        assert infos[BranchSite("main", "seg_head")].kind is BranchClass.LOOP_EXIT


class TestCompress:
    """Run structure: the RLE branch repeats its own recent history."""

    def test_rle_branch_loves_local_history(self):
        trace = get_trace("compress", 1)
        profile = get_profile("compress", 1)
        site = BranchSite("main", "rle")
        plain = evaluate(ProfilePredictor(profile), trace).per_site[site]
        history = evaluate(LoopPredictor(profile, 9), trace).per_site[site]
        assert history.mispredictions < plain.mispredictions


class TestCCompiler:
    """Markov token stream: dispatch correlates with the generator."""

    def test_dispatch_correlates(self):
        trace = get_trace("c-compiler", 1)
        profile = get_profile("c-compiler", 1)
        site = BranchSite("main", "dispatch")
        plain = evaluate(ProfilePredictor(profile), trace).per_site[site]
        corr = evaluate(CorrelationPredictor(profile, 8), trace).per_site[site]
        assert corr.mispredictions < plain.mispredictions


class TestDoduc:
    """Numeric kernel: counted loops, near-nothing to improve."""

    def test_not_improvable(self):
        planner = ReplicationPlanner(
            get_program("doduc"), get_profile("doduc", 1), 6
        )
        assert planner.improved_branch_count() == 0

    def test_loop_exits_dominate(self):
        trace = get_trace("doduc", 1)
        infos = classify_branches(get_program("doduc"))
        exits = sum(
            1
            for site, _ in trace
            if infos[site].kind is BranchClass.LOOP_EXIT
        )
        assert exits / len(trace) > 0.9


class TestAbalone:
    """Alpha-beta pruning: data-dominated, little history structure."""

    def test_pruning_branch_barely_improvable(self):
        planner = ReplicationPlanner(
            get_program("abalone"), get_profile("abalone", 1), 4
        )
        site = BranchSite("search", "improve")
        plan = planner.plans[site]
        if plan.improvable:
            best = plan.best_option(4)
            gain = (best.correct - plan.profile_correct) / plan.executions
            assert gain < 0.1  # single-digit percentage at best


class TestPredict:
    """Counter simulation: alternating sources give deep structure."""

    def test_best_rate_improves_substantially(self):
        planner = ReplicationPlanner(
            get_program("predict"), get_profile("predict", 1), 6
        )
        profile_rate = (
            planner.profile_mispredictions() / planner.total_executions()
        )
        best = planner.best_misprediction_rate(6)
        assert best < profile_rate - 0.05


class TestProlog:
    """Backtracking: recursion pollutes global history (path tables
    reject it), local history helps the clause loop a little."""

    def test_recursion_blocks_cfg_correlation(self):
        planner = ReplicationPlanner(
            get_program("prolog"), get_profile("prolog", 1), 4
        )
        site = BranchSite("solve", "unified")
        plan = planner.plans[site]
        for option in plan.options:
            if option.family == "correlated":
                gain = option.correct - plan.profile_correct
                assert gain <= plan.executions * 0.05


class TestScheduler:
    """Max-update scan: partially structured, moderate gains."""

    def test_scan_branch_present_and_hot(self):
        profile = get_profile("scheduler", 1)
        site = BranchSite("main", "scan_body")
        assert profile.executions(site) > 1000
