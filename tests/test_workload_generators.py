"""Random program generator tests."""

import pytest

from repro.interp import run_program
from repro.ir import format_program, parse_program, validate_program
from repro.workloads import random_program


@pytest.mark.parametrize("seed", range(25))
def test_generated_programs_are_valid(seed):
    program = random_program(seed)
    validate_program(program)


@pytest.mark.parametrize("seed", range(25))
def test_generated_programs_terminate(seed):
    program = random_program(seed)
    result = run_program(program, [seed], max_steps=2_000_000)
    assert result.steps > 0


@pytest.mark.parametrize("seed", range(10))
def test_generated_programs_roundtrip(seed):
    program = random_program(seed)
    text = format_program(program)
    assert format_program(parse_program(text)) == text


def test_generation_is_deterministic():
    a = format_program(random_program(42))
    b = format_program(random_program(42))
    assert a == b


def test_different_seeds_differ():
    texts = {format_program(random_program(seed)) for seed in range(10)}
    assert len(texts) > 5


def test_depth_bounds_nesting():
    shallow = random_program(7, max_depth=1)
    assert len(shallow.main_function().blocks) >= 1
