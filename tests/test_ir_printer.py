"""Printer tests, including parse → print → parse round trips."""

import pytest

from repro.ir import (
    Branch,
    Const,
    format_instr,
    format_program,
    parse_program,
    validate_program,
)
from repro.workloads import WORKLOADS

from conftest import (
    ALTERNATING_LOOP,
    CORRELATED_BRANCHES,
    FIXED_TRIP_LOOP,
    RECURSIVE_SUM,
)


class TestFormatInstr:
    def test_const(self):
        assert format_instr(Const("x", 3)) == "x = const 3"

    def test_branch(self):
        branch = Branch("lt", "a", 5, "yes", "no")
        assert format_instr(branch) == "br lt a, 5 ? yes : no"

    def test_pointer_branch(self):
        branch = Branch("eq", "p", 0, "yes", "no", pointer=True)
        assert format_instr(branch).startswith("br.ptr")

    def test_prediction_annotation_rendered(self):
        branch = Branch("eq", "p", 0, "yes", "no", predict=True)
        assert format_instr(branch).startswith("br.t ")
        negative = Branch("eq", "p", 0, "yes", "no", predict=False)
        assert format_instr(negative).startswith("br.n ")

    def test_pointer_and_prediction_combine(self):
        branch = Branch("eq", "p", 0, "yes", "no", pointer=True, predict=False)
        assert format_instr(branch).startswith("br.ptr.n ")

    def test_annotated_branch_roundtrips(self):
        program = parse_program(
            "func main(p) {\nentry:\n  br.ptr.t eq p, 0 ? a : b\n"
            "a:\n  ret 1\nb:\n  ret 0\n}"
        )
        branch = program.main_function().block("entry").branch
        assert branch.pointer is True
        assert branch.predict is True
        assert format_program(parse_program(format_program(program))) == (
            format_program(program)
        )


@pytest.mark.parametrize(
    "source",
    [ALTERNATING_LOOP, FIXED_TRIP_LOOP, CORRELATED_BRANCHES, RECURSIVE_SUM],
    ids=["alternating", "fixed-trip", "correlated", "recursive"],
)
def test_roundtrip_fixture_programs(source):
    program = parse_program(source)
    text = format_program(program)
    reparsed = parse_program(text)
    assert format_program(reparsed) == text
    validate_program(reparsed)


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_roundtrip_workloads(name):
    program = WORKLOADS[name].build()
    text = format_program(program)
    reparsed = parse_program(text)
    assert format_program(reparsed) == text
    validate_program(reparsed)


def test_entry_function_printed_first():
    program = parse_program(
        "func helper() {\nentry:\n  ret\n}\nfunc main() {\nentry:\n  ret\n}"
    )
    assert format_program(program).startswith("func main")


def test_entry_block_printed_first():
    program = parse_program("func main() {\nstart:\n  ret\n}")
    text = format_program(program)
    assert text.splitlines()[1] == "start:"
