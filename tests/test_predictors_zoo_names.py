"""Lint-style checks over the whole predictor zoo: every predictor
carries its name as an *instance* attribute (set via
``Predictor.__init__``), no concrete class shadows it at class level,
and names are unique across the zoo — they key result tables, so a
collision would silently merge two rows."""

from repro.predictors import (
    LastDirection,
    SaturatingCounter,
    all_yeh_patt_variants,
    semistatic_suite,
    static_predictors,
    two_level_4k,
)
from repro.profiling import ProfileData, Trace


def _zoo(alternating_loop):
    trace = Trace()
    for site in alternating_loop.branch_sites():
        for bit in (1, 1, 0, 1):
            trace.record(site, bool(bit))
    profile = ProfileData.from_trace(trace)
    return [
        *static_predictors(alternating_loop),
        *semistatic_suite(profile),
        LastDirection(),
        SaturatingCounter(2),
        *all_yeh_patt_variants().values(),
        two_level_4k(),
    ]


def test_names_are_unique_nonempty_strings(alternating_loop):
    zoo = _zoo(alternating_loop)
    names = [predictor.name for predictor in zoo]
    for name in names:
        assert isinstance(name, str) and name, name
    duplicates = {name for name in names if names.count(name) > 1}
    assert not duplicates, f"duplicate predictor names: {sorted(duplicates)}"


def test_name_is_an_instance_attribute_everywhere(alternating_loop):
    for predictor in _zoo(alternating_loop):
        assert "name" in vars(predictor), type(predictor).__name__
        assert "name" not in type(predictor).__dict__, type(predictor).__name__
