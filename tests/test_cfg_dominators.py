"""Dominator tree tests, including the classic irreducible-ish shapes."""

from repro.cfg import CFG, DominatorTree
from repro.ir import parse_function


def domtree(source: str) -> DominatorTree:
    return DominatorTree(CFG.from_function(parse_function(source)))


DIAMOND = """
func f(n) {
entry:
  br lt n, 0 ? left : right
left:
  jump join
right:
  jump join
join:
  ret n
}
"""


def test_entry_dominates_everything():
    tree = domtree(DIAMOND)
    for label in ("entry", "left", "right", "join"):
        assert tree.dominates("entry", label)


def test_dominance_is_reflexive():
    tree = domtree(DIAMOND)
    assert tree.dominates("join", "join")
    assert not tree.strictly_dominates("join", "join")


def test_diamond_join_dominated_by_entry_only():
    tree = domtree(DIAMOND)
    assert tree.immediate_dominator("join") == "entry"
    assert not tree.dominates("left", "join")
    assert not tree.dominates("right", "join")


def test_branch_arms_dominated_by_entry():
    tree = domtree(DIAMOND)
    assert tree.immediate_dominator("left") == "entry"
    assert tree.immediate_dominator("right") == "entry"


def test_entry_has_no_idom():
    assert domtree(DIAMOND).immediate_dominator("entry") is None


def test_chain_dominance():
    tree = domtree(
        "func f() {\na:\n  jump b\nb:\n  jump c\nc:\n  ret\n}"
    )
    assert tree.dominates("a", "c")
    assert tree.dominates("b", "c")
    assert tree.immediate_dominator("c") == "b"


def test_loop_header_dominates_body():
    tree = domtree(
        "func f(n) {\nentry:\n  i = move 0\nhead:\n"
        "  br lt i, n ? body : exit\nbody:\n  i = add i, 1\n  jump head\n"
        "exit:\n  ret i\n}"
    )
    assert tree.dominates("head", "body")
    assert tree.dominates("head", "exit")
    assert not tree.dominates("body", "head")


def test_depths_increase_down_tree():
    tree = domtree(DIAMOND)
    assert tree.depth["entry"] == 0
    assert tree.depth["left"] == 1
    assert tree.depth["join"] == 1


def test_two_loops_sharing_code():
    # Nested loops: inner header dominated by outer header.
    tree = domtree(
        """
func f(n) {
entry:
  i = move 0
outer:
  br lt i, n ? inner_init : done
inner_init:
  j = move 0
inner:
  br lt j, 3 ? inner_body : outer_next
inner_body:
  j = add j, 1
  jump inner
outer_next:
  i = add i, 1
  jump outer
done:
  ret i
}
"""
    )
    assert tree.dominates("outer", "inner")
    assert tree.dominates("inner", "inner_body")
    assert tree.immediate_dominator("outer_next") == "inner"
