"""Static-baseline experiment tests."""

import pytest

from repro.experiments import statics

NAMES = ["c-compiler", "doduc"]


@pytest.fixture(scope="module")
def result():
    return statics.run(scale=1, names=NAMES)


def test_rows(result):
    for row in ("always taken", "backward taken", "opcode", "ball-larus", "profile"):
        assert row in result.rows


def test_ball_larus_best_static(result):
    # Ball/Larus must beat the simple heuristics on every benchmark.
    bl = result.data["ball-larus"]
    for other in ("always taken", "backward taken", "opcode"):
        for b, o in zip(bl, result.data[other]):
            assert b <= o + 1e-9


def test_profile_beats_every_static(result):
    profile = result.data["profile"]
    bl = result.data["ball-larus"]
    for p, b in zip(profile, bl):
        assert p <= b + 1e-9


def test_ratio_row(result):
    ratios = result.data["ball-larus / profile"]
    for ratio in ratios:
        assert ratio >= 1.0 - 1e-9
