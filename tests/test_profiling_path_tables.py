"""Frame-local path-history collection tests.

The key property: path history equals the decisions along the CFG path
in the same activation, and crucially does NOT see callee branches —
unlike raw global history.
"""

from repro.ir import BranchSite, parse_program
from repro.profiling import ProfileData, collect_path_tables, trace_program

CALLS_BETWEEN = """
func noisy() {
entry:
  i = move 0
head:
  br lt i, 3 ? body : done
body:
  i = add i, 1
  jump head
done:
  ret i
}

func main(n) {
entry:
  k = move 0
loop:
  br lt k, n ? body : finish
body:
  parity = mod k, 2
  br eq parity, 0 ? even : odd
even:
  x = call noisy()
  jump second
odd:
  y = call noisy()
  jump second
second:
  br eq parity, 0 ? e2 : o2
e2:
  jump cont
o2:
  jump cont
cont:
  k = add k, 1
  jump loop
finish:
  ret k
}
"""


def test_path_history_skips_callee_branches():
    program = parse_program(CALLS_BETWEEN)
    tables = collect_path_tables(program, [40], bits=4)
    second = tables[BranchSite("main", "second")]
    # The most recent frame-local decision before `second` is the
    # `body` branch of the same iteration; despite the noisy() call in
    # between, the low history bit determines the outcome exactly.
    for pattern, (not_taken, taken) in second.counts.items():
        assert not_taken == 0 or taken == 0


def test_global_history_is_polluted_by_callee():
    program = parse_program(CALLS_BETWEEN)
    trace, _ = trace_program(program, [40])
    profile = ProfileData.from_trace(trace, global_bits=1)
    second = profile.global_tables[BranchSite("main", "second")]
    # With 1 bit of raw global history, the most recent branch is the
    # callee's exit branch (always the same direction), so the history
    # cannot separate even from odd iterations.
    mixed = [
        entry for entry in second.counts.values() if entry[0] and entry[1]
    ]
    assert mixed, "global history should be uninformative here"


def test_correlation_table_prefers_path_tables():
    program = parse_program(CALLS_BETWEEN)
    trace, _ = trace_program(program, [40])
    profile = ProfileData.from_trace(trace)
    site = BranchSite("main", "second")
    assert profile.correlation_table(site) is profile.global_tables[site]
    tables = collect_path_tables(program, [40])
    profile.attach_path_tables(tables)
    assert profile.correlation_table(site) is tables[site]


def test_new_frames_start_with_empty_history():
    program = parse_program(CALLS_BETWEEN)
    tables = collect_path_tables(program, [10], bits=8)
    head = tables[BranchSite("noisy", "head")]
    # Every call to noisy() starts a fresh frame: the first execution of
    # `head` in each call sees history 0.
    assert 0 in head.counts
    zero_entry = head.counts[0]
    assert zero_entry[0] + zero_entry[1] >= 10  # one per call at least


def test_planner_rejects_call_polluted_correlation():
    from repro.replication import ReplicationPlanner

    program = parse_program(CALLS_BETWEEN)
    trace, _ = trace_program(program, [60])
    profile = ProfileData.from_trace(trace)
    profile.attach_path_tables(collect_path_tables(program, [60]))
    planner = ReplicationPlanner(program, profile, max_states=4)
    plan = planner.plans[BranchSite("main", "second")]
    best = plan.best_option(4)
    # With honest path tables the branch IS improvable (it correlates
    # with the body branch along the CFG path).
    assert best is not None
    assert best.correct >= plan.executions - 2
