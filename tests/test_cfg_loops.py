"""Natural-loop detection and the nesting forest."""

from repro.cfg import CFG, LoopForest
from repro.ir import parse_function

NESTED = """
func f(n) {
entry:
  i = move 0
outer:
  br lt i, n ? inner_init : done
inner_init:
  j = move 0
inner:
  br lt j, 3 ? inner_body : outer_next
inner_body:
  j = add j, 1
  jump inner
outer_next:
  i = add i, 1
  jump outer
done:
  ret i
}
"""


def forest_of(source: str) -> LoopForest:
    return LoopForest(CFG.from_function(parse_function(source)))


def test_simple_loop_found():
    forest = forest_of(
        "func f(n) {\nentry:\n  i = move 0\nhead:\n"
        "  br lt i, n ? body : exit\nbody:\n  i = add i, 1\n  jump head\n"
        "exit:\n  ret i\n}"
    )
    assert len(forest) == 1
    loop = forest.loops[0]
    assert loop.header == "head"
    assert loop.body == {"head", "body"}
    assert loop.back_edges == [("body", "head")]


def test_no_loops_in_dag():
    forest = forest_of(
        "func f(n) {\nentry:\n  br lt n, 0 ? a : b\na:\n  jump c\n"
        "b:\n  jump c\nc:\n  ret n\n}"
    )
    assert len(forest) == 0
    assert forest.loop_of("a") is None


def test_nested_loops_structure():
    forest = forest_of(NESTED)
    assert len(forest) == 2
    outer = forest.loop_with_header("outer")
    inner = forest.loop_with_header("inner")
    assert inner.parent is outer
    assert inner in outer.children
    assert outer.parent is None
    assert outer.depth == 1
    assert inner.depth == 2


def test_inner_body_contained_in_both():
    forest = forest_of(NESTED)
    outer = forest.loop_with_header("outer")
    inner = forest.loop_with_header("inner")
    assert "inner_body" in inner.body
    assert "inner_body" in outer.body
    assert "outer_next" in outer.body
    assert "outer_next" not in inner.body


def test_loop_of_returns_innermost():
    forest = forest_of(NESTED)
    assert forest.loop_of("inner_body").header == "inner"
    assert forest.loop_of("outer_next").header == "outer"
    assert forest.loop_of("done") is None


def test_top_level():
    forest = forest_of(NESTED)
    assert [loop.header for loop in forest.top_level()] == ["outer"]


def test_exit_edges():
    forest = forest_of(NESTED)
    cfg = forest.cfg
    inner = forest.loop_with_header("inner")
    assert inner.exit_edges(cfg) == [("inner", "outer_next")]
    outer = forest.loop_with_header("outer")
    assert outer.exit_edges(cfg) == [("outer", "done")]


def test_two_back_edges_merge_into_one_loop():
    forest = forest_of(
        """
func f(n) {
entry:
  i = move 0
head:
  br lt i, n ? body : exit
body:
  parity = mod i, 2
  i = add i, 1
  br eq parity, 0 ? even_back : odd_back
even_back:
  jump head
odd_back:
  jump head
exit:
  ret i
}
"""
    )
    assert len(forest) == 1
    loop = forest.loops[0]
    assert len(loop.back_edges) == 2
    assert loop.body == {"head", "body", "even_back", "odd_back"}


def test_self_loop():
    forest = forest_of(
        "func f(n) {\nentry:\n  i = move 0\nspin:\n  i = add i, 1\n"
        "  br lt i, n ? spin : out\nout:\n  ret i\n}"
    )
    assert len(forest) == 1
    assert forest.loops[0].body == {"spin"}
    assert forest.loops[0].back_edges == [("spin", "spin")]
