"""Predecessor path enumeration for correlated branches."""

from repro.cfg import predecessor_paths
from repro.ir import parse_function

DIAMOND_THEN_TEST = """
func f(n) {
entry:
  br lt n, 0 ? neg : pos
neg:
  x = const -1
  jump join
pos:
  x = const 1
  jump join
join:
  br eq x, 1 ? yes : no
yes:
  ret 1
no:
  ret 0
}
"""


def test_two_paths_to_join():
    function = parse_function(DIAMOND_THEN_TEST)
    paths = predecessor_paths(function, "join", max_branches=2)
    patterns = sorted(str(p).split(":")[0] for p in paths)
    assert patterns == ["0", "1"]


def test_path_records_blocks():
    function = parse_function(DIAMOND_THEN_TEST)
    paths = predecessor_paths(function, "join", max_branches=2)
    routes = {p.blocks for p in paths}
    assert ("entry", "neg", "join") in routes
    assert ("entry", "pos", "join") in routes


def test_path_pattern_bit_order():
    function = parse_function(DIAMOND_THEN_TEST)
    paths = predecessor_paths(function, "join", max_branches=2)
    by_route = {p.blocks: p for p in paths}
    # entry -> neg is the taken edge of `br lt n, 0 ? neg : pos`.
    value, length = by_route[("entry", "neg", "join")].pattern
    assert (value, length) == (1, 1)
    value, length = by_route[("entry", "pos", "join")].pattern
    assert (value, length) == (0, 1)


def test_depth_limit_respected():
    function = parse_function(
        """
func f(a, b) {
entry:
  br lt a, 0 ? m1a : m1b
m1a:
  jump mid
m1b:
  jump mid
mid:
  br lt b, 0 ? m2a : m2b
m2a:
  jump target
m2b:
  jump target
target:
  ret 0
}
"""
    )
    shallow = predecessor_paths(function, "target", max_branches=1)
    assert all(len(p) <= 1 for p in shallow)
    assert len(shallow) == 2
    deep = predecessor_paths(function, "target", max_branches=2)
    assert len(deep) == 4
    assert all(len(p) == 2 for p in deep)


def test_paths_stop_at_entry():
    function = parse_function(
        "func f(n) {\nentry:\n  jump target\ntarget:\n  ret n\n}"
    )
    paths = predecessor_paths(function, "target", max_branches=4)
    assert len(paths) == 1
    assert paths[0].blocks == ("entry", "target")
    assert len(paths[0]) == 0


def test_loop_paths_do_not_cycle(alternating_loop):
    paths = predecessor_paths(alternating_loop.function("main"), "body", 8)
    # Every path must be finite and acyclic.
    for path in paths:
        assert len(set(path.blocks)) == len(path.blocks)


def test_branch_with_both_arms_to_target():
    function = parse_function(
        "func f(n) {\nentry:\n  br lt n, 0 ? t : t\nt:\n  ret n\n}"
    )
    paths = predecessor_paths(function, "t", max_branches=2)
    patterns = sorted(p.pattern for p in paths)
    assert patterns == [(0, 1), (1, 1)]


def test_max_paths_cutoff():
    function = parse_function(DIAMOND_THEN_TEST)
    paths = predecessor_paths(function, "join", max_branches=2, max_paths=1)
    assert len(paths) == 1
