"""Unit tests for the distributed-tracing building blocks.

Pure in-process coverage of :mod:`repro.obs.tracing`,
:mod:`repro.obs.flight`, :mod:`repro.obs.profiler` and the trace
exporters — no sockets, no servers (the live-service contract lives in
``tests/test_service_tracing.py``):

* traceparent format/parse round-trips and the strict rejection rules;
* per-thread trace lifecycle on the observer (start/adopt/end), span
  parenting across a simulated pool-thread hop, and the tuple/dict/
  SpanRecord forms ``span_dicts()`` normalises;
* deterministic tail-sampling (same trace id -> same decision in every
  process) and the flight recorder's keep/evict/exemplar behaviour;
* the sampling profiler's collapsed-stack output;
* the span-tree and Chrome/Perfetto exporters.
"""

import threading
import time

import pytest

from repro.obs import (
    OBS,
    format_span_tree,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    trace_chrome_doc,
)
from repro.obs.core import Observer
from repro.obs.flight import FlightRecorder, sample_decision
from repro.obs.profiler import (
    StackSampler,
    collapsed_stacks,
    profile_collapsed,
)
from repro.obs.tracing import ActiveTrace


class TestTraceparent:
    def test_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        parsed = parse_traceparent(format_traceparent(trace_id, span_id))
        assert parsed == (trace_id, span_id)

    def test_ids_are_well_formed_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)
        assert len(new_span_id()) == 16

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-abcdefabcdefabcd-01",  # bad trace id length
            "00-" + "g" * 32 + "-abcdefabcdefabcd-01",  # non-hex
            "00-" + "0" * 32 + "-abcdefabcdefabcd-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "ff-" + "a" * 32 + "-abcdefabcdefabcd-01",  # reserved version
            "00-" + "a" * 32 + "-abcdefabcdefabcd",  # missing flags
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None

    def test_accepts_extra_fields_and_case(self):
        header = "00-" + "A" * 32 + "-" + "B" * 16 + "-01-extrastate"
        parsed = parse_traceparent(header)
        assert parsed == ("a" * 32, "b" * 16)


class TestActiveTraceLifecycle:
    def test_spans_collect_on_trace_not_process_list(self):
        obs = Observer()  # recording disabled
        trace = obs.start_trace()
        try:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        finally:
            done = obs.end_trace()
        assert done is trace
        assert obs.spans() == []  # process-wide list untouched
        spans = trace.span_dicts()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert all(s["trace_id"] == trace.trace_id for s in spans)

    def test_adoption_parents_across_thread_hop(self):
        obs = Observer()
        trace = obs.start_trace()
        with obs.span("request"):
            request_span_id = obs.current_span_id()

            def pool_work():
                with obs.adopt_trace(trace, request_span_id):
                    with obs.span("pool"):
                        pass

            worker = threading.Thread(target=pool_work)
            worker.start()
            worker.join()
        obs.end_trace()
        by_name = {s["name"]: s for s in trace.span_dicts()}
        assert by_name["pool"]["parent_id"] == by_name["request"]["span_id"]
        assert by_name["pool"]["tid"] != by_name["request"]["tid"]

    def test_inbound_context_becomes_root_parent(self):
        obs = Observer()
        trace = obs.start_trace("ab" * 16, remote_parent_id="cd" * 8)
        with obs.span("request"):
            pass
        obs.end_trace()
        (span,) = trace.span_dicts()
        assert span["trace_id"] == "ab" * 16
        assert span["parent_id"] == "cd" * 8

    def test_end_without_start_is_none(self):
        obs = Observer()
        assert obs.end_trace() is None

    def test_recording_observer_still_collects_records(self):
        obs = Observer(record_spans=True)
        trace = obs.start_trace()
        with obs.span("both"):
            pass
        obs.end_trace()
        assert [r.name for r in obs.spans()] == ["both"]
        assert trace.span_dicts()[0]["name"] == "both"

    def test_add_span_dicts_merges_remote(self):
        trace = ActiveTrace()
        remote = [{"name": "remote", "span_id": "x" * 16, "parent_id": None}]
        trace.add_span_dicts(remote)
        assert trace.span_dicts() == remote


class TestTailSampling:
    def test_deterministic_across_calls(self):
        trace_id = new_trace_id()
        first = sample_decision(trace_id, 0.5)
        assert all(sample_decision(trace_id, 0.5) == first for _ in range(10))

    def test_rate_extremes(self):
        assert sample_decision(new_trace_id(), 1.0) is True
        assert sample_decision(new_trace_id(), 0.0) is False

    def test_rate_roughly_honoured(self):
        kept = sum(sample_decision(new_trace_id(), 0.25) for _ in range(2000))
        assert 350 < kept < 650  # ~500 expected; generous noise bounds


def _finished_trace(obs=OBS, name="service.request"):
    trace = obs.start_trace()
    with obs.span(name):
        pass
    obs.end_trace()
    return trace


class TestFlightRecorder:
    def test_keeps_errors_and_slow_regardless_of_rate(self):
        recorder = FlightRecorder(sample_rate=0.0, slow_threshold=0.25)
        trace = _finished_trace()
        assert recorder.record(trace, 500, "/x", 0.001) == "error"
        trace = _finished_trace()
        assert recorder.record(trace, 200, "/x", 0.5) == "slow"
        trace = _finished_trace()
        assert recorder.record(trace, 200, "/x", 0.001) is None

    def test_entry_shape_and_lookup(self):
        recorder = FlightRecorder(sample_rate=1.0)
        trace = _finished_trace()
        trace.notes["proxied"] = True
        assert recorder.record(trace, 200, "/predict", 0.02, request_id="r1", shard=3)
        entry = recorder.get(trace.trace_id)
        assert entry["route"] == "/predict"
        assert entry["request_id"] == "r1"
        assert entry["shard"] == 3
        assert entry["notes"] == {"proxied": True}
        assert entry["spans"][0]["name"] == "service.request"
        assert recorder.get("f" * 32) is None

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4, sample_rate=1.0)
        traces = [_finished_trace() for _ in range(6)]
        for trace in traces:
            recorder.record(trace, 200, "/x", 0.001)
        assert len(recorder) == 4
        assert recorder.get(traces[0].trace_id) is None
        assert recorder.get(traces[-1].trace_id) is not None
        newest_first = [s["trace_id"] for s in recorder.summaries()]
        assert newest_first[0] == traces[-1].trace_id

    def test_exemplars_track_latency_buckets(self):
        recorder = FlightRecorder(sample_rate=1.0)
        fast, slow = _finished_trace(), _finished_trace()
        recorder.record(fast, 200, "/x", 0.001)
        recorder.record(slow, 200, "/x", 1.5)
        exemplars = recorder.exemplars()
        assert len(exemplars) == 2
        observed = {trace_id for trace_id, _ in exemplars.values()}
        assert observed == {fast.trace_id, slow.trace_id}

    def test_disabled_recorder_drops_everything(self):
        recorder = FlightRecorder(sample_rate=1.0, enabled=False)
        assert recorder.record(_finished_trace(), 500, "/x", 9.0) is None
        assert len(recorder) == 0


class TestProfiler:
    def test_collapsed_stacks_renders_counts(self):
        counts = {("a:f", "b:g"): 3, ("a:f",): 1}
        text = collapsed_stacks(counts)
        lines = sorted(text.strip().splitlines())
        assert "a:f 1" in lines
        assert "a:f;b:g 3" in lines

    def test_profile_collapsed_sees_this_thread(self):
        text = profile_collapsed(seconds=0.15, interval=0.01)
        assert text.strip()
        assert "test_obs_tracing" in text or "profiler" in text

    def test_stack_sampler_background(self):
        sampler = StackSampler(interval=0.01).start()
        deadline = time.time() + 0.15
        while time.time() < deadline:
            sum(range(200))
        text = sampler.stop()
        assert text.strip()


class TestExporters:
    def _spans(self):
        root_id, child_id = "a" * 16, "b" * 16
        return [
            {
                "name": "service.request", "trace_id": "c" * 32,
                "span_id": root_id, "parent_id": None, "start": 1.0,
                "duration": 0.5, "depth": 0, "pid": 10, "tid": 1, "attrs": {},
            },
            {
                "name": "service.pool", "trace_id": "c" * 32,
                "span_id": child_id, "parent_id": root_id, "start": 1.1,
                "duration": 0.3, "depth": 1, "pid": 11, "tid": 2, "attrs": {},
            },
        ]

    def test_span_tree_indents_children(self):
        lines = format_span_tree(self._spans())
        assert len(lines) == 2
        assert lines[0].lstrip() == lines[0]  # root not indented
        assert "service.request" in lines[0]
        assert lines[1] != lines[1].lstrip()  # child indented
        assert "service.pool" in lines[1]

    def test_chrome_doc_shape(self):
        doc = trace_chrome_doc("c" * 32, self._spans())
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] > 0
