"""Suffix-trie enumeration tests."""

import pytest

from repro.statemachines import (
    LEAF,
    analyze_shape,
    shape_depth,
    shape_leaves,
    shapes_with_leaves,
    valid_shapes,
)


def catalan(n: int) -> int:
    result = 1
    for k in range(n):
        result = result * 2 * (2 * k + 1) // (k + 2)
    return result


class TestEnumeration:
    def test_counts_are_catalan(self):
        for leaves in range(1, 9):
            assert len(shapes_with_leaves(leaves)) == catalan(leaves - 1)

    def test_single_leaf(self):
        assert shapes_with_leaves(1) == (LEAF,)

    def test_two_leaves(self):
        assert shapes_with_leaves(2) == ((LEAF, LEAF),)

    def test_zero_leaves(self):
        assert shapes_with_leaves(0) == ()

    def test_leaves_partition_histories(self):
        # For every shape, every 2^depth history must match exactly one
        # leaf (by its low bits).
        for shape in shapes_with_leaves(5):
            leaves = shape_leaves(shape)
            depth = shape_depth(shape)
            for history in range(1 << depth):
                matches = [
                    (v, l)
                    for (v, l) in leaves
                    if (history & ((1 << l) - 1)) == v
                ]
                assert len(matches) == 1


class TestLeafPatterns:
    def test_two_leaf_patterns(self):
        assert shape_leaves((LEAF, LEAF)) == [(0, 1), (1, 1)]

    def test_comb_patterns(self):
        comb = (LEAF, (LEAF, LEAF))  # 0 | 10 | 11 in recent-first bits
        assert shape_leaves(comb) == [(0, 1), (0b01, 2), (0b11, 2)]

    def test_depth(self):
        assert shape_depth(LEAF) == 0
        assert shape_depth((LEAF, LEAF)) == 1
        assert shape_depth((LEAF, (LEAF, (LEAF, LEAF)))) == 3


class TestTransitions:
    def test_two_state_machine_transitions(self):
        info = analyze_shape((LEAF, LEAF))
        assert info is not None
        # From either state, outcome b leads to state for pattern (b, 1).
        assert info.transitions[0] == (0, 1)
        assert info.transitions[1] == (0, 1)
        assert info.initial == 0

    def test_underdetermined_shape_rejected(self):
        # Leaves {0, 11, 101, 1000, 1001} (recent-first): from state "0"
        # on outcome 1 the known bits "10" end at an internal node.
        shape = (
            LEAF,
            (
                ((( LEAF, LEAF), LEAF), LEAF),
            ),
        )
        # Build explicitly: root = (leaf0, node1); node1 = (node10, leaf11);
        # node10 = (node100, leaf101); node100 = (leaf1000, leaf1001)
        node100 = (LEAF, LEAF)
        node10 = (node100, LEAF)
        node1 = (node10, LEAF)
        shape = (LEAF, node1)
        assert analyze_shape(shape) is None

    def test_all_analyzed_shapes_have_total_transitions(self):
        for info in valid_shapes(4, 9, require_connected=False):
            for row in info.transitions:
                assert 0 <= row[0] < info.n_states
                assert 0 <= row[1] < info.n_states

    def test_initial_state_matches_zero_history(self):
        for info in valid_shapes(5, 9, require_connected=False):
            value, length = info.leaves[info.initial]
            assert value == 0  # the all-zero history leaf


class TestValidShapes:
    def test_validity_filtering_reduces_count(self):
        assert len(valid_shapes(6, 9, False)) <= len(shapes_with_leaves(6))

    def test_connectivity_filtering_reduces_further(self):
        loose = len(valid_shapes(6, 9, require_connected=False))
        strict = len(valid_shapes(6, 9, require_connected=True))
        assert strict <= loose

    def test_depth_limit(self):
        shallow = valid_shapes(5, 2, require_connected=False)
        assert all(info.depth <= 2 for info in shallow)

    def test_state_names(self):
        info = analyze_shape((LEAF, LEAF))
        assert info.state_names() == ["0", "1"]

    def test_caching_returns_same_object(self):
        assert valid_shapes(4, 9) is valid_shapes(4, 9)
