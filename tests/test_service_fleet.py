"""Fleet mode end to end: fork, shard, proxy, merge, restart, drain.

The fleet under test is always a **subprocess** (via
:func:`repro.service.supervisor.spawn_fleet`) — pytest runs threads,
and forking a fleet from a threaded process would clone held locks
into every worker.  The subprocess publishes a ``--ready-file`` the
tests poll for ports and pids.

Covered here:

* supervisor boots N workers behind one port and reports them on
  ``GET /fleet``;
* heavy requests are answered correctly no matter which worker
  accepts (cross-shard proxying), and the shard counters account for
  every routing decision;
* ``/stats`` is the exact fleet-wide merge (counters sum across
  workers);
* killing a worker mid-traffic causes **zero failed requests** and the
  supervisor restarts the shard within its backoff budget;
* SIGTERM drains the whole fleet to a clean exit;
* the startup-SIGTERM regression: a signal delivered before the
  listener binds exits promptly instead of arming the drain timer
  against a server that never started (driven via the
  ``REPRO_SERVE_TEST_BIND_DELAY`` hook).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.shard import owner_shard, shard_key
from repro.service.supervisor import spawn_fleet

WORKERS = 3
BENCH = "compress"
#: seed_offset base private to this module (cold keys, no cross-test reuse)
SEED_BASE = 60_000


@pytest.fixture(scope="module")
def fleet():
    handle = spawn_fleet(workers=WORKERS, threads=2)
    yield handle
    handle.stop()


@pytest.fixture
def client(fleet):
    with ServiceClient(fleet.host, fleet.port, timeout=60.0) as c:
        yield c


def _merged_counters(client):
    return client.stats().get("counters", {})


def _wait_for(predicate, timeout, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestTopology:
    def test_ready_file_reports_every_worker(self, fleet):
        assert fleet.ready["workers"] == WORKERS
        assert len(fleet.pids) == WORKERS
        assert len(set(fleet.pids)) == WORKERS
        assert fleet.control_dir and os.path.isdir(fleet.control_dir)

    def test_fleet_endpoint_lists_all_workers_alive(self, client):
        doc = client.request("GET", "/fleet")
        assert doc["workers"] == WORKERS
        assert doc["alive"] == WORKERS
        assert doc["unreachable"] == []
        shards = sorted(entry["shard"] for entry in doc["fleet"])
        assert shards == list(range(WORKERS))
        assert all(entry["pid"] for entry in doc["fleet"])

    def test_control_sockets_exist_per_worker(self, fleet):
        for shard in range(WORKERS):
            assert os.path.exists(fleet.worker_socket(shard))


class TestShardedRequests:
    def test_heavy_requests_succeed_regardless_of_accepting_worker(
        self, client
    ):
        # one cold key per shard — wherever each request lands, the
        # response must be the correct artifact summary
        for offset in range(SEED_BASE, SEED_BASE + 6):
            doc = client.artifacts(BENCH, scale=1, seed_offset=offset)
            assert doc["benchmark"] == BENCH
            assert doc["seed_offset"] == offset
            assert doc["source"] in {"computed", "lru", "coalesced"}

    def test_every_routing_decision_is_accounted(self, client):
        before = _merged_counters(client)
        n = 8
        for offset in range(SEED_BASE + 100, SEED_BASE + 100 + n):
            client.artifacts(BENCH, scale=1, seed_offset=offset)

        def routed():
            after = _merged_counters(client)
            return sum(
                after.get(c, 0) - before.get(c, 0)
                for c in (
                    "service.shard.local",
                    "service.shard.proxied",
                    "service.shard.fallback_local",
                )
            )

        # counters live on whichever worker handled each request; the
        # merged view must account for exactly one decision per request
        assert _wait_for(lambda: routed() >= n, timeout=5.0)
        assert routed() == n

    def test_proxied_response_carries_owner_annotation(self, client):
        # probe until a request is answered by a non-owner (the shared
        # socket spreads accepts, so a handful of keys suffice)
        for offset in range(SEED_BASE + 200, SEED_BASE + 230):
            doc = client.artifacts(BENCH, scale=1, seed_offset=offset)
            shard_info = doc.get("shard")
            if shard_info is not None:
                key = shard_key(BENCH, 1, offset)
                assert shard_info["owner"] == owner_shard(key, WORKERS)
                assert shard_info["proxied_by"] != shard_info["owner"]
                return
        pytest.skip("every probe landed on its owner (possible but rare)")

    def test_stats_are_merged_across_workers(self, client):
        before = _merged_counters(client).get("service.requests", 0)
        n = 10
        for _ in range(n):
            client.healthz()
        # requests spread over all workers; only the fleet-wide merge
        # can see every one of them
        assert _wait_for(
            lambda: _merged_counters(client).get("service.requests", 0)
            - before
            >= n,
            timeout=5.0,
        )


class TestChaosRestart:
    def test_killed_worker_restarts_and_no_request_fails(self, fleet, client):
        victim_shard = 1
        victim_pid = fleet.pids[victim_shard]
        os.kill(victim_pid, signal.SIGKILL)
        # keep firing heavy requests across all shards while the shard
        # is down; proxy-to-dead-owner must fall back locally, never 5xx
        for offset in range(SEED_BASE + 300, SEED_BASE + 312):
            status, doc = client.request_raw(
                "POST",
                "/artifacts",
                {"name": BENCH, "scale": 1, "seed_offset": offset},
            )
            assert status == 200, doc
        # backoff starts at 0.2s; well inside the budget the supervisor
        # must have respawned the shard with a fresh pid
        assert _wait_for(
            lambda: fleet.refresh_ready()["pids"][victim_shard]
            not in (victim_pid, None),
            timeout=10.0,
        ), fleet.ready
        assert fleet.ready["restarts"] >= 1
        # and the new worker answers on the control plane again
        assert _wait_for(
            lambda: client.request("GET", "/fleet")["alive"] == WORKERS,
            timeout=10.0,
        )


class TestFleetShutdown:
    def test_sigterm_drains_the_whole_fleet_cleanly(self):
        handle = spawn_fleet(workers=2, threads=2)
        with ServiceClient(handle.host, handle.port, timeout=30.0) as c:
            c.healthz()
        assert handle.stop(timeout=30.0) == 0
        # every worker is gone, not just the supervisor
        for pid in handle.pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)


class TestStartupSigterm:
    def _serve_subprocess(self, extra_env, *args):
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
            env=env,
            stderr=subprocess.PIPE,
        )

    def test_sigterm_before_bind_exits_promptly(self):
        # the bind-delay hook parks startup for 30s; the signal must cut
        # that short — the old code hung in wait_idle via the drain path
        process = self._serve_subprocess({"REPRO_SERVE_TEST_BIND_DELAY": "30"})
        try:
            time.sleep(2.0)  # interpreter up, handlers installed, pre-bind
            started = time.monotonic()
            process.terminate()
            stderr = process.communicate(timeout=10)[1]
            elapsed = time.monotonic() - started
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0, stderr
        assert elapsed < 5.0, f"took {elapsed:.1f}s to die during startup"
        assert b"stopped before binding" in stderr
