"""Scheduling substrate tests: dependences, list scheduling, superblocks."""

import pytest

from repro.cfg import LivenessInfo
from repro.ir import parse_function, parse_program
from repro.scheduling import (
    build_dep_graph,
    estimate_program_cycles,
    form_superblocks,
    latency_of,
    list_schedule,
    schedule_blocks_individually,
    schedule_instructions,
    schedule_superblock,
)


def instrs_of(body: str):
    function = parse_function(f"func f(a, b, p) {{\nentry:\n{body}\n}}")
    block = function.block("entry")
    out = list(block.instrs)
    out.append(block.terminator)
    return out


class TestDepGraph:
    def test_raw_dependence(self):
        instrs = instrs_of("  x = add a, 1\n  y = add x, 1\n  ret y")
        graph = build_dep_graph(instrs)
        assert (0, 1) in [(p, 1) for p, _ in graph.preds[1]] or any(
            p == 0 for p, _ in graph.preds[1]
        )

    def test_independent_instructions(self):
        instrs = instrs_of("  x = add a, 1\n  y = add b, 1\n  ret x")
        graph = build_dep_graph(instrs)
        assert not any(p == 0 for p, _ in graph.preds[1])

    def test_war_dependence(self):
        instrs = instrs_of("  x = add a, 1\n  a = add b, 1\n  ret x")
        graph = build_dep_graph(instrs)
        assert any(p == 0 for p, _ in graph.preds[1])

    def test_memory_ordering(self):
        instrs = instrs_of(
            "  store p, 1, 0\n  x = load p, 0\n  store p, 2, 0\n  ret x"
        )
        graph = build_dep_graph(instrs)
        assert any(p == 0 for p, _ in graph.preds[1])  # load after store
        assert any(p == 1 for p, _ in graph.preds[2])  # store after load

    def test_loads_may_reorder(self):
        instrs = instrs_of("  x = load p, 0\n  y = load p, 1\n  ret x")
        graph = build_dep_graph(instrs)
        assert not any(p == 0 for p, _ in graph.preds[1])

    def test_latencies(self):
        instrs = instrs_of("  x = mul a, b\n  y = add a, b\n  ret x")
        assert latency_of(instrs[0]) == 3
        assert latency_of(instrs[1]) == 1


class TestListSchedule:
    def test_serial_chain(self):
        instrs = instrs_of(
            "  x = add a, 1\n  y = add x, 1\n  z = add y, 1\n  ret z"
        )
        schedule = schedule_instructions(instrs, issue_width=4)
        assert schedule.cycles == 4  # fully serial

    def test_parallel_pairs(self):
        instrs = instrs_of(
            "  x = add a, 1\n  y = add b, 1\n  z = add a, 2\n  w = add b, 2\n  ret x"
        )
        wide = schedule_instructions(instrs, issue_width=4)
        narrow = schedule_instructions(instrs, issue_width=1)
        assert wide.cycles < narrow.cycles

    def test_latency_respected(self):
        instrs = instrs_of("  x = mul a, b\n  y = add x, 1\n  ret y")
        schedule = schedule_instructions(instrs, issue_width=2)
        # mul latency 3 -> add at cycle >= 3, ret after it.
        assert schedule.start_cycle[1] >= 3

    def test_empty(self):
        assert schedule_instructions([]).cycles == 0

    def test_all_instructions_scheduled(self):
        instrs = instrs_of(
            "  x = add a, 1\n  y = mul x, b\n  store p, y, 0\n  ret y"
        )
        schedule = schedule_instructions(instrs)
        assert len(schedule) == len(instrs)


SUPERBLOCK_PROGRAM = """
func main(n) {
entry:
  i = move 0
  acc = move 0
loop:
  br lt i, n ? body : exit  ; predict taken
body:
  t = mul i, 3
  acc = add acc, t
  i = add i, 1
  jump loop
exit:
  ret acc
}
"""


class TestSuperblocks:
    def program(self):
        import dataclasses

        program = parse_program(SUPERBLOCK_PROGRAM)
        block = program.main_function().block("loop")
        block.terminator = dataclasses.replace(block.branch, predict=True)
        return program

    def test_trace_follows_prediction(self):
        function = self.program().main_function()
        traces = form_superblocks(function)
        main_trace = traces[0]
        assert main_trace.blocks[:3] == ["entry", "loop", "body"]

    def test_unpredicted_branch_ends_trace(self):
        program = parse_program(SUPERBLOCK_PROGRAM)  # no predictions
        traces = form_superblocks(program.main_function())
        lead = traces[0]
        assert lead.blocks == ["entry", "loop"]

    def test_traces_partition_blocks(self):
        function = self.program().main_function()
        traces = form_superblocks(function)
        flat = [label for trace in traces for label in trace.blocks]
        assert sorted(flat) == sorted(function.blocks)

    def test_region_schedule_not_longer(self):
        function = self.program().main_function()
        trace = form_superblocks(function)[0]
        region = schedule_superblock(function, trace)
        blockwise = schedule_blocks_individually(function, trace)
        assert region.cycles <= blockwise

    def test_speculation_respects_liveness(self):
        # acc is live into `exit` (returned there); an instruction
        # defining acc must not be hoisted above the loop branch.
        function = self.program().main_function()
        trace = form_superblocks(function)[0]
        liveness = LivenessInfo(function)
        schedule = schedule_superblock(function, trace, liveness)
        branch_position = trace.branch_positions[0]
        acc_positions = [
            index
            for index, instr in enumerate(trace.instrs)
            if "acc" in instr.defs() and index > branch_position
        ]
        for position in acc_positions:
            assert (
                schedule.start_cycle[position]
                > schedule.start_cycle[branch_position]
            )

    def test_pure_work_speculated(self):
        function = self.program().main_function()
        trace = form_superblocks(function)[0]
        with_spec = schedule_superblock(function, trace, allow_speculation=True)
        without = schedule_superblock(function, trace, allow_speculation=False)
        assert with_spec.cycles <= without.cycles


class TestEstimates:
    def test_program_estimate(self):
        import dataclasses

        program = parse_program(SUPERBLOCK_PROGRAM)
        block = program.main_function().block("loop")
        block.terminator = dataclasses.replace(block.branch, predict=True)
        counts = {
            ("main", "entry"): 1,
            ("main", "loop"): 101,
            ("main", "body"): 100,
            ("main", "exit"): 1,
        }
        baseline, region = estimate_program_cycles(program, counts)
        assert 0 < region <= baseline

    def test_divergence_cost_charged(self):
        import dataclasses

        program = parse_program(SUPERBLOCK_PROGRAM)
        block = program.main_function().block("loop")
        block.terminator = dataclasses.replace(block.branch, predict=True)
        counts = {
            ("main", "entry"): 1,
            ("main", "loop"): 101,
            ("main", "body"): 100,
            ("main", "exit"): 1,
        }
        quiet = estimate_program_cycles(program, counts)[1]
        noisy_edges = {("main", "loop", "exit"): 50}
        noisy = estimate_program_cycles(program, counts, noisy_edges)[1]
        assert noisy >= quiet
