"""Service telemetry contract: request ids, /metrics, access log.

Same style as ``test_service.py`` — real HTTP against an ephemeral-port
server — but focused on the observability surface: the ``X-Request-Id``
correlation chain, the Prometheus exposition at ``GET /metrics``, the
JSON access log, and the load generator's server-side quantiles.
"""

import json
import time

import pytest

from repro.obs import OBS, validate_exposition
from repro.obs.promtext import exposition_types, histogram_bucket_counts
from repro.service import (
    ServiceClient,
    ServiceConfig,
    shutdown_gracefully,
    start_background,
)
from repro.service.loadgen import server_quantiles_ms
from repro.service.server import new_request_id, sanitize_request_id

BENCH = "compress"


@pytest.fixture(scope="module")
def server():
    server, _ = start_background(
        ServiceConfig(port=0, threads=2, queue_limit=8, log_json=True)
    )
    yield server
    shutdown_gracefully(server, drain_seconds=5)


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


class TestRequestIds:
    def test_sanitize_accepts_token_ids(self):
        assert sanitize_request_id("abc-123_x.y:z") == "abc-123_x.y:z"
        assert sanitize_request_id("  padded  ") == "padded"

    def test_sanitize_rejects_junk(self):
        assert sanitize_request_id(None) is None
        assert sanitize_request_id("") is None
        assert sanitize_request_id("has spaces") is None
        assert sanitize_request_id("newline\nid") is None
        assert sanitize_request_id("x" * 200) is None

    def test_new_request_id_shape(self):
        rid = new_request_id()
        assert len(rid) == 16 and sanitize_request_id(rid) == rid
        assert new_request_id() != rid

    def test_client_supplied_id_is_echoed(self, client):
        client.request("GET", "/healthz", request_id="trace-me-42")
        assert client.last_request_id == "trace-me-42"

    def test_server_generates_id_when_absent(self, client):
        client.request("GET", "/healthz")
        first = client.last_request_id
        assert first and sanitize_request_id(first) == first
        client.request("GET", "/healthz")
        assert client.last_request_id != first  # fresh id per request

    def test_error_responses_also_carry_the_id(self, client):
        status, _ = client.request_raw(
            "GET", "/no/such/route", request_id="err-id-1"
        )
        assert status == 404
        assert client.last_request_id == "err-id-1"

    def test_request_id_lands_in_span_attrs(self, server, client):
        # The span closes on the server thread just after the client has
        # read the response — poll briefly instead of racing it.
        OBS.enable()
        try:
            client.request("GET", "/healthz", request_id="span-id-7")
            attrs = []
            deadline = time.monotonic() + 5.0
            while not attrs and time.monotonic() < deadline:
                attrs = [
                    span.attrs
                    for span in OBS.spans()
                    if span.name == "service.request"
                    and span.attrs.get("request_id") == "span-id-7"
                ]
                if not attrs:
                    time.sleep(0.01)
        finally:
            OBS.disable()
        assert attrs and attrs[0]["route"] == "healthz"

    def test_access_log_line_is_json_with_request_id(self, client, capfd):
        # The log line is written by the server thread after the
        # response goes out — poll briefly instead of racing it.
        client.request("GET", "/healthz", request_id="logged-id-9")
        stderr = ""
        match = []
        deadline = time.monotonic() + 5.0
        while not match and time.monotonic() < deadline:
            stderr += capfd.readouterr().err
            records = [
                json.loads(line)
                for line in stderr.splitlines()
                if line.startswith("{")
            ]
            match = [r for r in records if r["request_id"] == "logged-id-9"]
            if not match:
                time.sleep(0.01)
        assert match, f"no access-log line for logged-id-9 in: {stderr!r}"
        record = match[0]
        assert record["route"] == "healthz"
        assert record["status"] == 200
        assert record["method"] == "GET"
        assert record["duration_ms"] >= 0


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_typed(self, client):
        client.request("GET", "/healthz")
        client.artifacts(BENCH)
        parsed = validate_exposition(client.metrics())
        types = exposition_types(parsed)
        assert types.get("repro_service_latency_seconds") == "histogram"
        assert types.get("repro_service_latency_seconds_healthz") == "histogram"
        assert types.get("repro_service_requests") == "counter"
        assert types.get("repro_service_requests_per_second") == "gauge"
        assert types.get("repro_service_uptime_seconds") == "gauge"
        assert types.get("repro_service_queue_depth") == "gauge"

    def test_latency_histogram_counts_requests(self, client):
        before = histogram_bucket_counts(
            validate_exposition(client.metrics()), "repro_service_latency_seconds"
        )
        for _ in range(5):
            client.request("GET", "/healthz")
        after = histogram_bucket_counts(
            validate_exposition(client.metrics()), "repro_service_latency_seconds"
        )
        # 5 healthz requests + the before-scrape itself completed in between
        assert sum(after.values()) - sum(before.values()) == 6

    def test_metrics_content_type(self, client):
        status, text = client.request_text("GET", "/metrics")
        assert status == 200
        assert "# TYPE" in text

    def test_post_metrics_is_405(self, client):
        status, body = client.request_raw("POST", "/metrics")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_stats_exposes_rates_and_histogram_summaries(self, client):
        client.request("GET", "/healthz")
        stats = client.stats()
        assert stats["rates"].get("service.requests", 0) > 0
        latency = stats["histograms"]["service.latency_seconds"]
        assert latency["count"] > 0
        assert 0 <= latency["p50"] <= latency["p99"]


class TestServerQuantiles:
    def test_delta_quantiles_from_scrapes(self):
        # two scrapes 100 samples apart: 90 fast (~1ms), 10 slow (~100ms)
        before = {0.001: 50.0}
        after = {0.001: 140.0, 0.1: 10.0}
        result = server_quantiles_ms(before, after)
        assert result["samples"] == 100
        assert result["p50_ms"] == pytest.approx(1.0, rel=0.10)
        assert result["p95_ms"] == pytest.approx(100.0, rel=0.10)

    def test_empty_delta_is_all_zero(self):
        result = server_quantiles_ms({}, {})
        assert result == {
            "samples": 0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }
