"""Single-pass engine tests: `evaluate_many` ≡ sequential `evaluate`.

The property test drives every predictor family — static heuristics,
dynamic counters, all nine Yeh/Patt two-level variants and the
semi-static table strategies — over random traces and requires exact
result identity (events, mispredictions, per-site breakdown *and* site
ordering) between the fused single-pass engine and the sequential
reference implementation, for both the stepper path and the closed-form
fast path.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.ir import BranchSite
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    CorrelationPredictor,
    FixedMapPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    all_yeh_patt_variants,
    engine_stats,
    evaluate,
    evaluate_many,
    reset_engine_stats,
)
from repro.profiling import ProfileData, Trace

SITES = [BranchSite("f", f"b{i}") for i in range(6)]

events_strategy = st.lists(
    st.tuples(st.integers(0, len(SITES) - 1), st.booleans()), max_size=200
)


def build_trace(events):
    trace = Trace()
    for index, taken in events:
        trace.record(SITES[index], taken)
    return trace


def predictor_families(trace):
    """One representative per predictor family, online and closed-form."""
    profile = ProfileData.from_trace(trace)
    predictors = [
        AlwaysTaken(),
        AlwaysNotTaken(),
        FixedMapPredictor(
            "alternating", {site: bool(i % 2) for i, site in enumerate(SITES)}
        ),
        LastDirection(),
        SaturatingCounter(1),
        SaturatingCounter(2),
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        CorrelationPredictor(profile, 2),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 3),
        LoopCorrelationPredictor(profile),
    ]
    predictors.extend(all_yeh_patt_variants(3).values())
    return predictors


def assert_results_identical(actual, expected):
    assert actual.predictor == expected.predictor
    assert actual.events == expected.events
    assert actual.mispredictions == expected.mispredictions
    assert list(actual.per_site) == list(expected.per_site)
    assert actual.per_site == expected.per_site


@given(events_strategy)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_evaluate_many_matches_sequential(events):
    trace = build_trace(events)
    predictors = predictor_families(trace)
    expected = [evaluate(predictor, trace) for predictor in predictors]
    actual = evaluate_many(predictors, trace)
    assert len(actual) == len(expected)
    for act, exp in zip(actual, expected):
        assert_results_identical(act, exp)


@given(events_strategy)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_evaluate_many_stepper_path_matches_sequential(events):
    # batch=False pins every online predictor to the fused stepper
    # scan — the batch kernels and the scan must agree exactly.
    trace = build_trace(events)
    predictors = predictor_families(trace)
    expected = [evaluate(predictor, trace) for predictor in predictors]
    actual = evaluate_many(predictors, trace, batch=False)
    for act, exp in zip(actual, expected):
        assert_results_identical(act, exp)


@given(events_strategy)
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_evaluate_many_is_repeatable(events):
    # Fresh steppers per pass: a second pass over the same predictors
    # must not be polluted by the first pass's state.
    trace = build_trace(events)
    predictors = predictor_families(trace)
    first = evaluate_many(predictors, trace)
    second = evaluate_many(predictors, trace)
    for a, b in zip(first, second):
        assert_results_identical(a, b)


def small_trace():
    trace = Trace()
    for taken in (True, True, False, True):
        trace.record(SITES[0], taken)
    for taken in (False, False):
        trace.record(SITES[1], taken)
    return trace


def test_closed_form_set_does_not_scan():
    # All-order-independent predictor sets are scored from per-site
    # counts alone; the trace is never replayed — and the events land
    # in the closed_form_events bucket, not the scanned-events rate.
    reset_engine_stats()
    results = evaluate_many([AlwaysTaken(), AlwaysNotTaken()], small_trace())
    stats = engine_stats()
    assert stats.scans == 0
    assert stats.events == 0
    assert stats.closed_form_events == 6
    assert stats.closed_form_predictors == 2
    assert stats.online_predictors == 0
    assert stats.batch_predictors == 0
    assert results[0].mispredictions == 3  # not-taken events
    assert results[1].mispredictions == 3  # taken events


def test_mixed_set_uses_batch_kernels():
    # The dynamic families score through their columnar kernels: no
    # stepper scan runs, but the events still count as online work.
    reset_engine_stats()
    evaluate_many(
        [AlwaysTaken(), LastDirection(), SaturatingCounter(2)], small_trace()
    )
    stats = engine_stats()
    assert stats.scans == 0
    assert stats.events == 6
    assert stats.closed_form_events == 0
    assert stats.batch_predictors == 2
    assert stats.online_predictors == 0
    assert stats.closed_form_predictors == 1
    assert stats.seconds > 0.0


def test_mixed_set_scans_once_without_batch():
    reset_engine_stats()
    evaluate_many(
        [AlwaysTaken(), LastDirection(), SaturatingCounter(2)],
        small_trace(),
        batch=False,
    )
    stats = engine_stats()
    assert stats.scans == 1
    assert stats.events == 6
    assert stats.batch_predictors == 0
    assert stats.online_predictors == 2
    assert stats.closed_form_predictors == 1
    assert stats.seconds > 0.0


def test_events_split_accumulates_across_calls():
    # Regression: engine.events used to count every call's events even
    # when no online work ran, inflating the --timings events/sec rate.
    reset_engine_stats()
    evaluate_many([AlwaysTaken()], small_trace())
    evaluate_many([LastDirection()], small_trace())
    evaluate_many([AlwaysNotTaken()], small_trace())
    stats = engine_stats()
    assert stats.events == 6
    assert stats.closed_form_events == 12
    assert stats.scans == 0
    assert stats.batch_predictors == 1


def test_empty_predictor_set():
    assert evaluate_many([], small_trace()) == []


def test_empty_trace():
    results = evaluate_many([AlwaysTaken(), LastDirection()], Trace())
    for result in results:
        assert result.events == 0
        assert result.mispredictions == 0
        assert result.per_site == {}


def test_stats_snapshot_is_independent():
    reset_engine_stats()
    before = engine_stats().snapshot()
    evaluate_many([LastDirection()], small_trace(), batch=False)
    assert before.scans == 0
    assert engine_stats().scans == 1
