"""Failure injection and degenerate-input robustness.

The pipeline should degrade gracefully: empty traces, branchless
programs, stale or mismatched profiles, and corrupted inputs must
produce clean results or typed errors — never silent corruption.
"""

import pytest

from repro.ir import BranchSite, parse_program, validate_program
from repro.interp import run_program
from repro.predictors import LastDirection, ProfilePredictor, evaluate
from repro.profiling import (
    ProfileData,
    Trace,
    TraceFormatError,
    trace_from_bytes,
    trace_program,
    trace_to_bytes,
)
from repro.replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
    tradeoff_curve,
)

BRANCHLESS = """
func main(n) {
entry:
  x = mul n, 3
  out x
  ret x
}
"""


class TestBranchlessProgram:
    def test_whole_pipeline(self):
        program = parse_program(BRANCHLESS)
        trace, result = trace_program(program, [5])
        assert len(trace) == 0
        assert result.value == 15
        profile = ProfileData.from_trace(trace)
        planner = ReplicationPlanner(program, profile)
        assert planner.plans == {}
        assert planner.best_misprediction_rate(4) == 0.0
        points = tradeoff_curve(planner)
        assert len(points) == 1
        report = apply_replication(program, [], profile)
        assert report.size_factor == 1.0
        measured = measure_annotated(report.program, [5])
        assert measured.events == 0


class TestEmptyTrace:
    def test_profile_from_empty_trace(self):
        profile = ProfileData.from_trace(Trace())
        assert profile.events == 0
        assert profile.totals == {}
        assert profile.fill_rate(9) == 0.0

    def test_evaluate_on_empty_trace(self):
        result = evaluate(LastDirection(), Trace())
        assert result.events == 0
        assert result.misprediction_rate == 0.0


class TestMismatchedProfiles:
    def test_profile_from_other_program(self, alternating_loop):
        """A profile whose sites do not exist in the program must not
        crash planning (they are simply not plannable)."""
        foreign = Trace()
        foreign.record(BranchSite("ghost_func", "ghost_block"), True)
        profile = ProfileData.from_trace(foreign)
        planner = ReplicationPlanner(alternating_loop, profile)
        assert planner.plans == {}

    def test_predictor_with_foreign_sites(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [10])
        foreign = Trace()
        foreign.record(BranchSite("other", "b"), True)
        profile = ProfileData.from_trace(foreign)
        # Evaluating a profile trained elsewhere falls back to defaults.
        result = evaluate(ProfilePredictor(profile), trace)
        assert result.events == len(trace)

    def test_annotating_with_empty_profile(self, alternating_loop):
        from repro.replication import annotate_profile_predictions

        count = annotate_profile_predictions(
            alternating_loop, ProfileData.from_trace(Trace())
        )
        assert count == 2  # all branches get the default


class TestCorruptedTraceFiles:
    def test_every_truncation_point_raises_cleanly(self, alternating_loop):
        import zlib

        trace, _ = trace_program(alternating_loop.copy(), [20])
        blob = trace_to_bytes(trace)
        for cut in range(0, len(blob), max(1, len(blob) // 17)):
            try:
                trace_from_bytes(blob[:cut])
            except (TraceFormatError, zlib.error):
                continue
            except Exception as error:  # noqa: BLE001
                pytest.fail(f"unexpected {type(error).__name__} at cut {cut}")
            else:
                pytest.fail(f"truncation at {cut} silently accepted")

    def test_bitflips_do_not_crash_uncontrolled(self, alternating_loop):
        import zlib

        trace, _ = trace_program(alternating_loop.copy(), [20])
        blob = bytearray(trace_to_bytes(trace))
        for position in range(4, len(blob), max(1, len(blob) // 23)):
            mutated = bytearray(blob)
            mutated[position] ^= 0xFF
            try:
                loaded = trace_from_bytes(bytes(mutated))
            except (TraceFormatError, zlib.error, ValueError, MemoryError):
                continue
            # If it loaded, the structure must at least be coherent.
            assert len(loaded.directions) == len(loaded.site_ids)


class TestPlannerEdgeCases:
    def test_planner_with_single_event(self, alternating_loop):
        trace = Trace()
        trace.record(BranchSite("main", "body"), True)
        profile = ProfileData.from_trace(trace)
        planner = ReplicationPlanner(alternating_loop, profile)
        plan = planner.plans[BranchSite("main", "body")]
        assert plan.profile_correct == 1
        assert not plan.improvable  # one event: nothing beats profile

    def test_max_states_one(self, alternating_loop):
        trace, _ = trace_program(alternating_loop.copy(), [50])
        profile = ProfileData.from_trace(trace)
        planner = ReplicationPlanner(alternating_loop, profile, max_states=1)
        for plan in planner.plans.values():
            assert plan.options == []

    def test_apply_empty_selection_is_identity_modulo_annotations(
        self, alternating_loop
    ):
        trace, _ = trace_program(alternating_loop.copy(), [20])
        profile = ProfileData.from_trace(trace)
        report = apply_replication(alternating_loop, [], profile)
        assert report.size_after == report.size_before
        assert run_program(report.program, [20]).value == run_program(
            alternating_loop.copy(), [20]
        ).value


class TestInterpreterFaultsSurface:
    def test_trap_propagates_through_tracing(self):
        program = parse_program(
            "func main(n) {\nentry:\n  x = div 1, n\n  ret x\n}"
        )
        from repro.interp import TrapError

        with pytest.raises(TrapError):
            trace_program(program, [0])

    def test_fuel_exhaustion_through_measurement(self):
        program = parse_program(
            "func main() {\nentry:\n  jump entry\n}"
        )
        from repro.interp import FuelExhausted

        with pytest.raises(FuelExhausted):
            measure_annotated(program, max_steps=1000)
