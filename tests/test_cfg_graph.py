"""CFG construction, traversal orders and unreachable-block removal."""

from repro.cfg import CFG, remove_unreachable_blocks
from repro.ir import parse_function, parse_program

DIAMOND = """
func f(n) {
entry:
  br lt n, 0 ? left : right
left:
  jump join
right:
  jump join
join:
  ret n
}
"""


def test_successors_and_predecessors():
    cfg = CFG.from_function(parse_function(DIAMOND))
    assert cfg.succs["entry"] == ("left", "right")
    assert sorted(cfg.preds["join"]) == ["left", "right"]
    assert cfg.preds["entry"] == []


def test_edges():
    cfg = CFG.from_function(parse_function(DIAMOND))
    assert ("entry", "left") in cfg.edges()
    assert len(cfg.edges()) == 4


def test_reachable_excludes_orphans():
    function = parse_function(
        DIAMOND.replace("join:", "orphan:\n  jump join\njoin:")
    )
    cfg = CFG.from_function(function)
    assert "orphan" not in cfg.reachable()
    assert cfg.reachable() == {"entry", "left", "right", "join"}


def test_postorder_ends_at_entry():
    cfg = CFG.from_function(parse_function(DIAMOND))
    order = cfg.postorder()
    assert order[-1] == "entry"
    assert set(order) == {"entry", "left", "right", "join"}


def test_reverse_postorder_starts_at_entry():
    cfg = CFG.from_function(parse_function(DIAMOND))
    rpo = cfg.reverse_postorder()
    assert rpo[0] == "entry"
    # A node appears after all its non-back-edge predecessors.
    assert rpo.index("join") > rpo.index("left")
    assert rpo.index("join") > rpo.index("right")


def test_rpo_with_loop():
    function = parse_function(
        "func f(n) {\nentry:\n  i = move 0\nhead:\n"
        "  br lt i, n ? body : exit\nbody:\n  i = add i, 1\n  jump head\n"
        "exit:\n  ret i\n}"
    )
    rpo = CFG.from_function(function).reverse_postorder()
    assert rpo.index("entry") < rpo.index("head") < rpo.index("body")


def test_remove_unreachable_blocks():
    program = parse_program(
        "func main() {\nentry:\n  ret\ndead1:\n  jump dead2\ndead2:\n  ret\n}"
    )
    removed = remove_unreachable_blocks(program.main_function())
    assert sorted(removed) == ["dead1", "dead2"]
    assert list(program.main_function().blocks) == ["entry"]


def test_remove_unreachable_keeps_live_cycle():
    program = parse_program(
        "func main(n) {\nentry:\n  i = move 0\nhead:\n"
        "  br lt i, n ? body : exit\nbody:\n  i = add i, 1\n  jump head\n"
        "exit:\n  ret i\n}"
    )
    assert remove_unreachable_blocks(program.main_function()) == []
