"""Observability core tests: spans, counters, exporters."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    OBS,
    Observer,
    SpanRecord,
    chrome_trace,
    default_observer,
    snapshot_to_json,
    summary_lines,
    write_chrome_trace,
)


@pytest.fixture
def obs():
    """A private recording observer (the process OBS stays untouched)."""
    observer = Observer()
    observer.enable()
    return observer


class TestSpans:
    def test_records_name_duration_and_attrs(self, obs):
        with obs.span("stage.work", benchmark="compress") as span:
            span.set(events=42)
        (record,) = obs.spans()
        assert record.name == "stage.work"
        assert record.duration >= 0
        assert record.attrs == {"benchmark": "compress", "events": 42}

    def test_nesting_depth(self, obs):
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        depths = {record.name: record.depth for record in obs.spans()}
        assert depths == {"outer": 0, "middle": 1, "inner": 2}

    def test_depth_resets_between_top_level_spans(self, obs):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert [record.depth for record in obs.spans()] == [0, 0]

    def test_exception_still_records_span_with_error_attr(self, obs):
        with pytest.raises(ValueError):
            with obs.span("exploding"):
                raise ValueError("boom")
        (record,) = obs.spans()
        assert record.attrs["error"] == "ValueError"

    def test_exception_does_not_corrupt_later_depths(self, obs):
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError
        with obs.span("after"):
            pass
        by_name = {record.name: record for record in obs.spans()}
        assert by_name["after"].depth == 0

    def test_disabled_observer_hands_out_null_span(self):
        observer = Observer()
        assert observer.span("anything") is NULL_SPAN
        with observer.span("anything") as span:
            span.set(ignored=True)
        assert observer.spans() == []

    def test_enable_disable_round_trip(self):
        observer = Observer()
        assert not observer.recording
        observer.enable()
        assert observer.recording
        with observer.span("seen"):
            pass
        observer.disable()
        with observer.span("unseen"):
            pass
        assert [record.name for record in observer.spans()] == ["seen"]

    def test_span_records_pid_and_tid(self, obs):
        import os
        import threading

        with obs.span("here"):
            pass
        (record,) = obs.spans()
        assert record.pid == os.getpid()
        assert record.tid == threading.get_ident()


class TestCounters:
    def test_add_creates_and_increments(self):
        observer = Observer()
        observer.add("a.hits")
        observer.add("a.hits", 4)
        assert observer.counter("a.hits") == 5

    def test_counters_are_live_without_enable(self):
        observer = Observer()
        assert not observer.recording
        observer.add("a.x")
        assert observer.counters() == {"a.x": 1}

    def test_gauge_last_write_wins(self):
        observer = Observer()
        observer.set_gauge("a.score", 0.25)
        observer.set_gauge("a.score", 0.75)
        assert observer.counter("a.score") == 0.75

    def test_prefix_filtered_view(self):
        observer = Observer()
        observer.add("a.x")
        observer.add("b.y")
        assert observer.counters("a.") == {"a.x": 1}

    def test_reset_prefix_isolates_subsystems(self):
        observer = Observer()
        observer.enable()
        observer.add("engine.events", 10)
        observer.add("artifacts.cache.hits", 3)
        with observer.span("kept"):
            pass
        observer.reset(prefix="engine.")
        assert observer.counter("engine.events") == 0
        assert observer.counter("artifacts.cache.hits") == 3
        # prefix reset keeps spans (the per-subsystem shims rely on it)
        assert [record.name for record in observer.spans()] == ["kept"]

    def test_full_reset_clears_everything(self, obs):
        obs.add("a.x")
        with obs.span("gone"):
            pass
        obs.reset()
        assert obs.counters() == {}
        assert obs.spans() == []

    def test_snapshot_is_a_copy(self):
        observer = Observer()
        observer.add("a.x")
        snapshot = observer.snapshot()
        observer.add("a.x")
        assert snapshot.counters == {"a.x": 1}

    def test_merge_namespaces_counters(self):
        observer = Observer()
        observer.add("artifacts.interpreter.runs")
        observer.merge(
            {"artifacts.interpreter.runs": 2}, counter_prefix="workers."
        )
        assert observer.counter("artifacts.interpreter.runs") == 1
        assert observer.counter("workers.artifacts.interpreter.runs") == 2

    def test_merge_gauges_overwrite_instead_of_summing(self):
        # Worker gauges are levels: two workers each reporting a best
        # score of 0.9 must not merge into 1.8.
        observer = Observer()
        observer.merge(
            {"sm.intra.best_score": 0.9, "sm.intra.candidates": 5},
            counter_prefix="workers.",
            gauges=["sm.intra.best_score"],
        )
        observer.merge(
            {"sm.intra.best_score": 0.8, "sm.intra.candidates": 7},
            counter_prefix="workers.",
            gauges=["sm.intra.best_score"],
        )
        # gauge: last write wins; counter: summed
        assert observer.counter("workers.sm.intra.best_score") == 0.8
        assert observer.counter("workers.sm.intra.candidates") == 12
        # the merged name is remembered as a gauge for re-export
        assert "workers.sm.intra.best_score" in observer.snapshot().gauges

    def test_merge_snapshot_carries_gauges_and_histograms(self):
        worker = Observer()
        worker.add("w.jobs", 3)
        worker.set_gauge("w.depth", 2)
        worker.observe("w.seconds", 0.5)
        parent = Observer()
        parent.merge_snapshot(worker.snapshot(), counter_prefix="workers.")
        parent.merge_snapshot(worker.snapshot(), counter_prefix="workers.")
        assert parent.counter("workers.w.jobs") == 6  # counter: summed
        assert parent.counter("workers.w.depth") == 2  # gauge: level
        hist = parent.histogram("workers.w.seconds")
        assert hist is not None and hist.count == 2  # histogram: merged

    def test_snapshot_tracks_gauge_names(self):
        observer = Observer()
        observer.add("a.total", 5)
        observer.set_gauge("a.level", 5)
        snapshot = observer.snapshot()
        assert snapshot.gauges == frozenset({"a.level"})

    def test_merge_spans_only_while_recording(self):
        observer = Observer()
        span = SpanRecord("w", 0.0, 1.0, 0, 1, 1, {})
        observer.merge({}, spans=[span])
        assert observer.spans() == []
        observer.enable()
        observer.merge({}, spans=[span])
        assert observer.spans() == [span]

    def test_default_observer_is_the_process_singleton(self):
        assert default_observer() is OBS


class TestExporters:
    def _snapshot(self, obs):
        with obs.span("stage.one", benchmark="compress"):
            pass
        with obs.span("stage.one"):
            pass
        with obs.span("stage.two"):
            pass
        obs.add("engine.events", 1000)
        obs.add("artifacts.cache.hits", 2)
        return obs.snapshot()

    def test_summary_lines_aggregate_spans_and_group_counters(self, obs):
        lines = summary_lines(self._snapshot(obs))
        text = "\n".join(lines)
        assert all(line.startswith("[timings]") for line in lines)
        assert "stage.one" in text and "2x" in text.replace("     ", " ")
        assert "engine.events" in text
        assert "artifacts.cache.hits" in text

    def test_summary_lines_empty_snapshot(self):
        lines = summary_lines(Observer().snapshot())
        assert lines == ["[timings] (no spans or counters recorded)"]

    def test_snapshot_to_json_round_trips(self, obs):
        payload = json.loads(snapshot_to_json(self._snapshot(obs)))
        assert payload["counters"]["engine.events"] == 1000
        assert len(payload["spans"]) == 3
        assert payload["spans"][0]["name"] == "stage.one"
        assert payload["metadata"]["producer"] == "repro.obs"

    def test_chrome_trace_schema(self, obs):
        doc = chrome_trace(self._snapshot(obs))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["producer"] == "repro.obs"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(complete) == 3 and len(counters) == 2
        for event in complete:
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 1
            assert event["cat"] == event["name"].split(".", 1)[0]
        assert complete[0]["args"] == {"benchmark": "compress"}
        end = max(e["ts"] + e["dur"] for e in complete)
        for event in counters:
            assert event["ts"] == end
            assert "value" in event["args"]

    def test_chrome_trace_timestamps_relative_to_first_span(self, obs):
        doc = chrome_trace(self._snapshot(obs))
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0

    def test_chrome_trace_stringifies_exotic_attrs(self, obs):
        with obs.span("stage.odd", site=("main", "loop")):
            pass
        doc = chrome_trace(obs.snapshot())
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["site"] == "('main', 'loop')"

    def test_write_chrome_trace(self, obs, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._snapshot(obs))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestConcurrency:
    """The audit the service daemon depends on: counter mutations from
    concurrent server threads must never lose updates.  All of
    ``add``/``set_gauge``/``merge``/``snapshot`` serialise on the
    observer lock; these hammers assert *exact* totals, which any lost
    read-modify-write would break."""

    THREADS = 8
    ITERATIONS = 2_000

    def _hammer(self, worker):
        import threading

        barrier = threading.Barrier(self.THREADS)
        errors = []

        def run(index):
            try:
                barrier.wait(10)
                worker(index)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors

    def test_concurrent_add_totals_are_exact(self):
        observer = Observer()

        def worker(index):
            for _ in range(self.ITERATIONS):
                observer.add("hammer.count")
                observer.add("hammer.bytes", 3)
                observer.add("hammer.seconds", 0.25)

        self._hammer(worker)
        counters = observer.counters("hammer.")
        assert counters["hammer.count"] == self.THREADS * self.ITERATIONS
        assert counters["hammer.bytes"] == 3 * self.THREADS * self.ITERATIONS
        assert counters["hammer.seconds"] == 0.25 * self.THREADS * self.ITERATIONS

    def test_concurrent_merge_totals_are_exact(self):
        observer = Observer()

        def worker(index):
            for _ in range(self.ITERATIONS):
                observer.merge({"x": 1, "y": 2.0}, counter_prefix="workers.")

        self._hammer(worker)
        counters = observer.counters("workers.")
        assert counters["workers.x"] == self.THREADS * self.ITERATIONS
        assert counters["workers.y"] == 2.0 * self.THREADS * self.ITERATIONS

    def test_concurrent_mixed_mutation_and_snapshot(self):
        """add + set_gauge + merge + snapshot racing: exact counter
        totals, a gauge holding one of the written values, and no
        mid-mutation snapshot corruption."""
        observer = Observer()
        snapshots = []

        def worker(index):
            for iteration in range(self.ITERATIONS):
                observer.add("mixed.count")
                observer.set_gauge("mixed.gauge", index)
                observer.merge({"m": 1}, counter_prefix="mixed.")
                if iteration % 500 == 0:
                    snapshots.append(observer.snapshot())

        self._hammer(worker)
        counters = observer.counters("mixed.")
        assert counters["mixed.count"] == self.THREADS * self.ITERATIONS
        assert counters["mixed.m"] == self.THREADS * self.ITERATIONS
        assert counters["mixed.gauge"] in range(self.THREADS)
        # Snapshots taken mid-hammer are internally consistent copies.
        for snapshot in snapshots:
            assert snapshot.counters.get("mixed.count", 0) <= (
                self.THREADS * self.ITERATIONS
            )

    def test_concurrent_spans_all_recorded(self):
        observer = Observer()
        observer.enable()

        def worker(index):
            for _ in range(200):
                with observer.span("hammer.span", worker=index):
                    pass

        self._hammer(worker)
        spans = observer.spans()
        assert len(spans) == self.THREADS * 200
        # Per-thread nesting stayed flat despite the concurrency.
        assert {span.depth for span in spans} == {0}
