"""Experiment harness tests: structure and paper-shape assertions.

These run the real experiment code on two small benchmarks (plus the
full suite for the cheap tables) and check the *shape* of the results —
the qualitative findings EXPERIMENTS.md records.
"""

import pytest

from repro.experiments import (
    ablation,
    crossdata,
    figures,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.report import Table, pct

NAMES = ["ghostview", "doduc"]


class TestReport:
    def test_pct(self):
        assert pct(0.1234) == "12.34"
        assert pct(0.5, 1) == "50.0"

    def test_table_render(self):
        table = Table("T", ["a", "b"])
        table.add_row("row", [0.5, 1], formatter=lambda v: pct(v) if isinstance(v, float) else str(v))
        text = table.render()
        assert "T" in text and "row" in text and "50.00" in text

    def test_bare_float_rejected(self):
        table = Table("T", ["a"])
        with pytest.raises(TypeError):
            table.add_row("row", [0.5])

    def test_row_length_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("bad", [1])


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(scale=1, names=NAMES)

    def test_rows_present(self, result):
        assert "profile" in result.rows
        assert "loop-correlation" in result.rows
        assert "static branches" in result.rows

    def test_loop_correlation_never_worse_than_profile(self, result):
        profile = result.data["profile"]
        combined = result.data["loop-correlation"]
        for p, c in zip(profile, combined):
            assert c <= p + 1e-9

    def test_nine_bit_loop_beats_one_bit(self, result):
        one = result.data["1 bit loop"]
        nine = result.data["9 bit loop"]
        for a, b in zip(one, nine):
            assert b <= a + 1e-9

    def test_branch_counts_consistent(self, result):
        statics = result.data["static branches"]
        executed = result.data["executed branches"]
        improved = result.data["improved branches"]
        for s, e, i in zip(statics, executed, improved):
            assert i <= e <= s


class TestTable2:
    def test_fill_rates_decrease_with_depth(self):
        result = table2.run(scale=1, names=NAMES)
        for column in range(len(NAMES)):
            rates = [result.data[f"{b} bit history"][column] for b in range(1, 10)]
            for earlier, later in zip(rates, rates[1:]):
                assert later <= earlier + 1e-9

    def test_one_bit_fully_used(self):
        result = table2.run(scale=1, names=NAMES)
        assert all(v == 1.0 for v in result.data["1 bit history"])


class TestTable3:
    def test_machine_tracks_history_rate(self):
        result = table3.run(scale=1, names=NAMES, max_bits=3)
        # "A state machine with 2 states implements exactly the 1 bit
        # history scheme."
        assert result.data["1 bit loop"] == result.data["2 states loop"]

    def test_machines_never_worse_than_profile(self):
        result = table3.run(scale=1, names=NAMES, max_bits=2)
        for label in ("2 states loop", "2 states exit"):
            for machine_rate, profile_rate in zip(
                result.data[label],
                result.data[f"profile ({label.split()[-1]})"],
            ):
                assert machine_rate <= profile_rate + 1e-9


class TestTable4:
    def test_monotone_in_states(self):
        result = table4.run(scale=1, names=NAMES, max_states=5)
        previous = result.data["profile"]
        for n in range(2, 6):
            current = result.data[f"{n} states"]
            for p, c in zip(previous, current):
                assert c <= p + 1e-9
            previous = current


class TestTable5:
    def test_monotone_and_bounded(self):
        result = table5.run(scale=1, names=NAMES, max_states=5)
        profile = result.data["profile"]
        best = result.data["5 states"]
        for p, b in zip(profile, best):
            assert 0.0 <= b <= p + 1e-9


class TestFigures:
    def test_curves_produced(self):
        tables = figures.run(scale=1, names=["ghostview"], max_states=5)
        assert "ghostview" in tables
        assert len(tables["ghostview"].rows) >= 1

    def test_csv_export(self, tmp_path):
        figures.run(
            scale=1, names=["doduc"], max_states=4, csv_dir=str(tmp_path)
        )
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        content = files[0].read_text()
        assert content.startswith("size_factor,misprediction_rate")

    def test_curve_helper(self):
        points = figures.curve_for("doduc", scale=1, max_states=4)
        assert points[0].size_factor == 1.0


class TestExtensions:
    def test_crossdata_degradation(self):
        result = crossdata.run(scale=1, names=NAMES)
        # Cross-data misprediction must not be better than same-data by
        # much (training on the evaluation set is the easy case).
        for strategy in ("profile", "loop-corr", "replicated"):
            same = result.data[f"{strategy} (same data)"]
            cross = result.data[f"{strategy} (cross data)"]
            for s, c in zip(same, cross):
                assert c >= s - 0.02

    def test_crossdata_compaction_regularises(self):
        # The counter-finding recorded in EXPERIMENTS.md: replicated
        # programs (small machines) degrade less cross-dataset than the
        # full 9-bit loop-correlation tables.
        result = crossdata.run(scale=1, names=NAMES)
        table_degradation = sum(result.data["loop-corr degradation"])
        replicated_degradation = sum(result.data["replicated degradation"])
        assert replicated_degradation <= table_degradation + 1e-9

    def test_ablation_search(self):
        result = ablation.run_search(scale=1, names=NAMES, n_states=4)
        for greedy, exhaustive in zip(
            result.data["greedy split"], result.data["exhaustive"]
        ):
            assert exhaustive <= greedy + 1e-9

    def test_ablation_pruning(self):
        result = ablation.run_pruning(scale=1, names=["ghostview"])
        assert result.data["pruned size"][0] <= result.data["unpruned size"][0]


class TestCli:
    def test_cli_table(self, capsys):
        from repro.experiments.cli import main

        assert main(["table2", "--names", "doduc"]) == 0
        out = capsys.readouterr().out
        assert "fill rate" in out

    def test_cli_figures(self, capsys):
        from repro.experiments.cli import main

        assert main(["figures", "--names", "doduc"]) == 0
        assert "doduc" in capsys.readouterr().out

    def test_cli_figures_csv(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(
            ["figures", "--names", "doduc", "--csv-dir", str(tmp_path)]
        ) == 0
        files = list(tmp_path.iterdir())
        assert len(files) == 1 and files[0].suffix == ".csv"

    def test_cli_scale_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["table2", "--names", "doduc", "--scale", "1"]) == 0

    def test_cli_rejects_unknown_experiment(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_cli_every_registered_experiment_runs(self, capsys):
        from repro.experiments.cli import SIMPLE, main

        for name in SIMPLE:
            assert main([name, "--names", "doduc"]) == 0, name
        capsys.readouterr()
