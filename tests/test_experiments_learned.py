"""Learned-zoo and transfer experiments, plus the shared cross-eval
prewarm helpers and the top-level experiment CLI forwarding."""

import json

import pytest

from repro.experiments import all_experiments, crosseval, learned, transfer
from repro.experiments.crossdata import DEFAULT_SEED_OFFSET
from repro import tools

NAMES = ["compress", "predict"]


def test_crosseval_owns_the_shared_seed_offset():
    assert crosseval.DEFAULT_SEED_OFFSET == DEFAULT_SEED_OFFSET
    assert set(crosseval.SEED_OFFSET_TARGETS) == {"crossdata", "transfer"}


@pytest.mark.parametrize("target", ["crossdata", "transfer"])
def test_prewarm_specs_cover_cross_eval_targets(target):
    specs = crosseval.prewarm_specs([target], NAMES, 1)
    assert ("compress", 1, 0) in specs
    assert ("compress", 1, DEFAULT_SEED_OFFSET) in specs
    assert len(specs) == 2 * len(NAMES)


def test_prewarm_specs_skip_offset_without_cross_eval_targets():
    specs = crosseval.prewarm_specs(["table1", "figures"], NAMES, 1)
    assert specs == [(name, 1, 0) for name in NAMES]


def test_learned_zoo_table_shape():
    table = learned.run(scale=1, names=NAMES)
    assert list(table.columns) == NAMES
    labels = list(table.data)
    assert labels[:3] == ["profile", "loop-corr", "two-level-4k"]
    assert "learned-perceptron-global-8bit" in labels
    assert "learned-logistic-global-8bit" in labels
    for values in table.data.values():
        assert len(values) == len(NAMES)
        assert all(0.0 <= value <= 1.0 for value in values)


def test_transfer_matrix_rows_and_baselines():
    table = transfer.run(scale=1, names=NAMES)
    assert list(table.columns) == NAMES
    labels = list(table.data)
    assert labels == [
        "train:compress",
        "train:predict",
        "profile (self-trained)",
        "loop-corr (self-trained)",
    ]
    for values in table.data.values():
        assert len(values) == len(NAMES)
        assert all(0.0 <= value <= 1.0 for value in values)
    # The diagonal (trained on the same workload) should beat the
    # worst off-diagonal transfer in each column — per-site weights
    # apply on the diagonal only.
    for column, name in enumerate(NAMES):
        diagonal = table.data[f"train:{name}"][column]
        others = [
            table.data[f"train:{other}"][column]
            for other in NAMES
            if other != name
        ]
        assert diagonal <= max(others)


def test_experiments_registered():
    registry = all_experiments()
    assert "learned-zoo" in registry
    assert "transfer" in registry


def test_experiment_names_do_not_shadow_tools_subcommands():
    """`python -m repro <experiment>` forwards by name, so the two
    namespaces must stay disjoint."""
    subcommands = {
        "validate", "run", "trace", "analyze", "profile", "optimize",
        "machines", "serve", "qa", "obs-export",
    }
    overlap = subcommands & (set(all_experiments()) | {"all", "cache"})
    assert not overlap


def test_tools_main_forwards_transfer_json(capsys):
    exit_code = tools.main(["transfer", "--format", "json", "--names", ",".join(NAMES)])
    assert exit_code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["columns"] == NAMES
    assert "train:compress" in document["rows"]
    assert "profile (self-trained)" in document["rows"]
    for row in document["rows"]:
        assert len(document["data"][row]) == len(NAMES)


def test_tools_main_still_dispatches_subcommands(capsys):
    with pytest.raises(SystemExit):
        tools.main(["validate", "--help"])
