"""Registry, single-scan behaviour, data parity and output formats.

* the registry enumerates every CLI target;
* table1 performs exactly **one** trace scan per benchmark (the profile
  row rides the closed-form path, not a second replay);
* converted experiments produce the same ``Table.data`` as a hand-rolled
  per-predictor sequential loop at seed scale;
* ``--format json|csv`` round-trips titles, column and row labels.
"""

import csv
import io
import json

import pytest

from repro.experiments import table1
from repro.experiments.cli import SIMPLE, main
from repro.experiments.registry import (
    all_experiments,
    experiment_names,
    get_experiment,
)
from repro.predictors import (
    AlwaysTaken,
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    backward_taken,
    ball_larus,
    evaluate,
    opcode_heuristic,
    two_level_4k,
)
from repro.profiling import Trace
from repro.workloads import get_artifacts, get_profile, get_program, get_trace

NAMES = ["ghostview", "doduc"]

EXPECTED_TARGETS = {
    "ablation-pruning",
    "ablation-search",
    "alignment",
    "costfn",
    "crossdata",
    "figures",
    "instper",
    "joint",
    "learned-zoo",
    "scheduling",
    "statics",
    "transfer",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "tracelen",
    "twolevel-zoo",
}


class TestRegistry:
    def test_every_target_registered(self):
        assert set(experiment_names()) == EXPECTED_TARGETS

    def test_simple_excludes_multi(self):
        assert set(SIMPLE) == EXPECTED_TARGETS - {"figures"}
        assert all_experiments()["figures"].multi

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("tableX")

    def test_descriptions_present(self):
        for experiment in all_experiments().values():
            assert experiment.description

    def test_tables_normalises_multi(self):
        tables = get_experiment("figures").tables(1, ["doduc"], max_states=4)
        assert len(tables) == 1
        assert "doduc" in tables[0].title


class TestSingleScan:
    def test_table1_never_replays_events(self, monkeypatch):
        # Warm every artifact/profile cache first so the counted run
        # performs evaluation only.
        table1.run(scale=1, names=NAMES)

        calls = []
        original = Trace.events

        def counting(self):
            calls.append(self)
            return original(self)

        monkeypatch.setattr(Trace, "events", counting)
        table1.run(scale=1, names=NAMES)
        # Every Table 1 predictor family has a columnar batch kernel,
        # so the per-event replay (`Trace.events`) never runs at all —
        # stronger than the old one-shared-scan-per-trace guarantee.
        assert calls == []


class TestDataParity:
    """Converted experiments == hand-rolled sequential loops."""

    def test_table1_rows(self):
        result = table1.run(scale=1, names=NAMES)
        for column, name in enumerate(NAMES):
            profile = get_profile(name, 1)
            trace = get_artifacts(name, scale=1).trace
            legacy = {
                "last direction": LastDirection(),
                "2 bit counter": SaturatingCounter(2),
                "two level 4K bit": two_level_4k(),
                "profile": ProfilePredictor(profile),
                "1 bit correlation": CorrelationPredictor(profile, 1),
                "1 bit loop": LoopPredictor(profile, 1),
                "9 bit loop": LoopPredictor(profile, 9),
                "loop-correlation": LoopCorrelationPredictor(profile),
            }
            for label, predictor in legacy.items():
                expected = evaluate(predictor, trace).misprediction_rate
                assert result.data[label][column] == expected, (label, name)

    def test_statics_rows(self):
        statics = get_experiment("statics").run(scale=1, names=NAMES)
        for column, name in enumerate(NAMES):
            program = get_program(name)
            trace = get_trace(name, 1)
            legacy = {
                "always taken": AlwaysTaken(),
                "backward taken": backward_taken(program),
                "opcode": opcode_heuristic(program),
                "ball-larus": ball_larus(program),
                "profile": ProfilePredictor(get_profile(name, 1)),
            }
            for label, predictor in legacy.items():
                expected = evaluate(predictor, trace).misprediction_rate
                assert statics.data[label][column] == expected, (label, name)

    def test_instper_rows(self):
        instper = get_experiment("instper").run(scale=1, names=NAMES)
        for column, name in enumerate(NAMES):
            profile = get_profile(name, 1)
            artifacts = get_artifacts(name, scale=1)
            result = evaluate(LoopCorrelationPredictor(profile), artifacts.trace)
            expected = artifacts.steps / result.mispredictions
            assert instper.data["loop-correlation"][column] == expected


class TestOutputFormats:
    def run_cli(self, capsys, *argv):
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_json_round_trips_labels(self, capsys):
        text = self.run_cli(capsys, "table1", "--names", "doduc")
        payload = json.loads(
            self.run_cli(capsys, "table1", "--names", "doduc", "--format", "json")
        )
        assert payload["columns"] == ["doduc"]
        assert payload["title"].startswith("Table 1")
        assert "profile" in payload["rows"]
        # every rendered cell appears in the text output too
        for row in payload["rows"]:
            assert row in text
            for cell in payload["cells"][row]:
                assert cell in text
            assert len(payload["data"][row]) == 1

    def test_json_multiple_tables_is_array(self, capsys):
        out = self.run_cli(
            capsys, "figures", "--names", "doduc", "--format", "json"
        )
        payload = json.loads(out)
        assert isinstance(payload, list) or payload["columns"]

    def test_csv_round_trips_labels(self, capsys):
        out = self.run_cli(
            capsys, "statics", "--names", "doduc", "--format", "csv"
        )
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0][0] == "table"
        assert rows[1] == ["", "doduc"]
        labels = [row[0] for row in rows[2:] if row]
        assert "ball-larus" in labels

    def test_text_format_is_default(self, capsys):
        explicit = self.run_cli(
            capsys, "statics", "--names", "doduc", "--format", "text"
        )
        default = self.run_cli(capsys, "statics", "--names", "doduc")
        assert explicit == default
