"""Toolkit CLI tests (python -m repro ...)."""

import pytest

from repro.tools import main

from conftest import ALTERNATING_LOOP


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "prog.ir"
    path.write_text(ALTERNATING_LOOP)
    return str(path)


def test_validate(ir_file, capsys):
    assert main(["validate", ir_file]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.ir"
    bad.write_text("func main() {\nentry:\n  jump ghost\n}")
    with pytest.raises(Exception):
        main(["validate", str(bad)])


def test_run(ir_file, capsys):
    assert main(["run", ir_file, "--args", "10"]) == 0
    out = capsys.readouterr().out
    assert "result: 15" in out  # 5*1 + 5*2


def test_trace(ir_file, tmp_path, capsys):
    out_path = tmp_path / "prog.trace"
    assert main(["trace", ir_file, "--args", "10", "-o", str(out_path)]) == 0
    assert out_path.exists()
    from repro.profiling import load_trace

    trace = load_trace(str(out_path))
    assert len(trace) == 21


def test_analyze(ir_file, capsys):
    assert main(["analyze", ir_file, "--args", "100"]) == 0
    out = capsys.readouterr().out
    assert "main:body" in out
    assert "intra-loop" in out
    assert "loop-exit" in out


def test_optimize(ir_file, tmp_path, capsys):
    out_path = tmp_path / "opt.ir"
    assert main(
        ["optimize", ir_file, "--args", "100", "-o", str(out_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "improving main:body" in out
    assert "misprediction" in out
    # The emitted program must parse, validate and behave identically.
    from repro.interp import run_program
    from repro.ir import parse_program, validate_program

    program = parse_program(out_path.read_text())
    validate_program(program)
    assert run_program(program, [100]).value == 150
    # Prediction annotations survive the round trip (they are syntax).
    predictions = [
        block.branch.predict
        for block in program.main_function()
        if block.branch is not None
    ]
    assert all(p is not None for p in predictions)


def test_machines(ir_file, capsys):
    assert main(
        ["machines", ir_file, "--args", "100", "--branch", "main:body"]
    ) == 0
    out = capsys.readouterr().out
    assert "intra-loop" in out
    assert "states" in out


def test_machines_unknown_branch(ir_file, capsys):
    assert main(
        ["machines", ir_file, "--args", "100", "--branch", "main:nope"]
    ) == 1


def test_profile_command(ir_file, tmp_path, capsys):
    out_path = tmp_path / "run.profile"
    assert main(["profile", ir_file, "--args", "50", "-o", str(out_path)]) == 0
    assert out_path.exists()
    from repro.profiling import load_profile

    profile = load_profile(str(out_path))
    assert profile.events == 101


def test_optimize_from_saved_profile(ir_file, tmp_path, capsys):
    profile_path = tmp_path / "run.profile"
    assert main(["profile", ir_file, "--args", "100", "-o", str(profile_path)]) == 0
    out_path = tmp_path / "opt.ir"
    assert main(
        [
            "optimize", ir_file, "--args", "100",
            "--profile", str(profile_path), "-o", str(out_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "using saved profile" in out
    assert "improving main:body" in out


def test_machines_dot(ir_file, capsys):
    assert main(
        ["machines", ir_file, "--args", "100", "--branch", "main:body", "--dot"]
    ) == 0
    assert "digraph" in capsys.readouterr().out


def test_serve_subcommand_registered_with_defaults():
    """`repro serve` parses and carries the daemon's config knobs; the
    blocking serve loop itself is exercised by tests/test_service.py."""
    from repro.tools import build_parser, cmd_serve

    options = build_parser().parse_args(["serve"])
    assert options.func is cmd_serve
    assert options.host == "127.0.0.1"
    assert options.port == 8642
    assert options.workers == 1  # processes; > 1 boots the fleet
    assert options.threads == 4  # per-worker heavy-request pool
    assert options.queue_limit == 16
    assert options.lru_size == 128
    assert options.drain_seconds == 10.0
    assert options.ready_file is None
    assert options.verbose is False
    custom = build_parser().parse_args(
        ["serve", "--port", "0", "--workers", "2", "--threads", "3",
         "--queue-limit", "1", "--lru-size", "8", "--drain-seconds", "0.5",
         "--ready-file", "ready.json", "--verbose"]
    )
    assert (custom.port, custom.workers, custom.threads) == (0, 2, 3)
    assert (custom.queue_limit, custom.ready_file) == (1, "ready.json")
    assert custom.verbose is True


def test_serve_module_entry_points_exist():
    """python -m repro.service and python -m repro.service.loadgen are
    importable entry points (run via their mains elsewhere)."""
    import importlib

    loadgen = importlib.import_module("repro.service.loadgen")
    assert callable(loadgen.main)


def test_serve_parser_accepts_telemetry_flags():
    from repro.tools import build_parser

    options = build_parser().parse_args(
        ["serve", "--log-json", "--trace-out", "svc_trace.json"]
    )
    assert options.log_json is True
    assert options.trace_out == "svc_trace.json"
    defaults = build_parser().parse_args(["serve"])
    assert defaults.log_json is False and defaults.trace_out is None


def test_obs_export_renders_saved_snapshot(tmp_path, capsys):
    from repro.obs import Observer, validate_exposition
    from repro.obs.export import write_snapshot

    observer = Observer()
    observer.add("engine.events", 123)
    observer.observe("engine.scan_seconds", 0.02)
    snap_path = tmp_path / "snap.json"
    write_snapshot(str(snap_path), observer.snapshot())

    assert main(["obs-export", str(snap_path)]) == 0
    text = capsys.readouterr().out
    validate_exposition(text)
    assert "repro_engine_events 123" in text
    assert "# TYPE repro_engine_scan_seconds histogram" in text

    out_path = tmp_path / "metrics.prom"
    assert main(["obs-export", str(snap_path), "-o", str(out_path)]) == 0
    assert out_path.read_text() == text


def test_obs_export_rejects_garbage_snapshot(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(Exception):
        main(["obs-export", str(bad)])
