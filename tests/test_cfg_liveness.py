"""Live-variable analysis tests."""

from repro.cfg import LivenessInfo
from repro.ir import parse_function


def info_of(source: str) -> LivenessInfo:
    return LivenessInfo(parse_function(source))


def test_straight_line_liveness():
    info = info_of(
        "func f(a) {\nentry:\n  x = add a, 1\n  jump out\nout:\n  ret x\n}"
    )
    assert "x" in info.live_into("out")
    assert "a" in info.live_into("entry")
    assert "x" not in info.live_into("entry")


def test_dead_after_last_use():
    info = info_of(
        "func f(a) {\nentry:\n  x = add a, 1\n  y = add x, 1\n  jump out\n"
        "out:\n  ret y\n}"
    )
    assert "x" not in info.live_into("out")
    assert "y" in info.live_into("out")


def test_branch_merges_liveness():
    info = info_of(
        """
func f(a, b) {
entry:
  br lt a, 0 ? left : right
left:
  ret a
right:
  ret b
}
"""
    )
    live = info.live_into("entry")
    assert "a" in live and "b" in live


def test_redefinition_kills():
    info = info_of(
        "func f(a) {\nentry:\n  x = const 1\n  jump use\n"
        "use:\n  x = const 2\n  ret x\n}"
    )
    # `use` redefines x before reading it: not live into `use`.
    assert "x" not in info.live_into("use")


def test_loop_carried_liveness():
    info = info_of(
        """
func f(n) {
entry:
  i = move 0
  acc = move 0
head:
  br lt i, n ? body : exit
body:
  acc = add acc, i
  i = add i, 1
  jump head
exit:
  ret acc
}
"""
    )
    # acc is read in body and exit; i is read in head and body; both
    # live around the back edge.
    assert {"i", "acc", "n"} <= info.live_into("head")
    assert "acc" in info.live_out["body"]


def test_use_before_def_in_block():
    info = info_of(
        "func f() {\nentry:\n  x = const 1\n  jump b\n"
        "b:\n  y = add x, 1\n  x = const 2\n  ret y\n}"
    )
    # b reads x before writing it: live into b.
    assert "x" in info.live_into("b")
