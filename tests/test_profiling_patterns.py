"""Pattern-table and profile-data tests."""

import pytest

from repro.ir import BranchSite
from repro.profiling import PatternTable, ProfileData, Trace


def alternating_trace(n: int = 100) -> Trace:
    trace = Trace()
    site = BranchSite("f", "b")
    for index in range(n):
        trace.record(site, index % 2 == 0)
    return trace


class TestPatternTable:
    def test_add_and_total(self):
        table = PatternTable(3)
        table.add(0b101, 1)
        table.add(0b101, 0)
        table.add(0b010, 1)
        assert table.total() == (1, 2)
        assert table.executions() == 3

    def test_correct_if_per_pattern(self):
        table = PatternTable(2)
        table.add(0b00, 1)
        table.add(0b00, 1)
        table.add(0b00, 0)
        table.add(0b11, 0)
        assert table.correct_if_per_pattern() == 3

    def test_correct_if_single(self):
        table = PatternTable(2)
        table.add(0b00, 1)
        table.add(0b11, 0)
        table.add(0b01, 0)
        assert table.correct_if_single() == 2

    def test_marginalize_sums_matching_suffixes(self):
        table = PatternTable(3)
        table.add(0b110, 1)  # low bit 0
        table.add(0b010, 0)  # low bit 0
        table.add(0b001, 1)  # low bit 1
        short = table.marginalize(1)
        assert short.counts[0] == [1, 1]
        assert short.counts[1] == [0, 1]

    def test_marginalize_to_zero_bits(self):
        table = PatternTable(3)
        table.add(5, 1)
        table.add(2, 0)
        collapsed = table.marginalize(0)
        assert collapsed.counts == {0: [1, 1]}

    def test_marginalize_identity(self):
        table = PatternTable(2)
        table.add(1, 1)
        clone = table.marginalize(2)
        assert clone.counts == table.counts
        clone.add(1, 1)
        assert table.counts[1] == [0, 1]  # deep copy

    def test_cannot_widen(self):
        with pytest.raises(ValueError):
            PatternTable(2).marginalize(3)

    def test_fill(self):
        table = PatternTable(3)
        table.add(0, 1)
        table.add(7, 0)
        assert table.fill() == (2, 8)


class TestProfileData:
    def test_history_bit_order_newest_is_lsb(self):
        # Outcomes T,T,N then observe: history low bits should be
        # (newest first) N,T,T = 0b011... check via the pattern seen at
        # the 4th event.
        trace = Trace()
        site = BranchSite("f", "b")
        for taken in (True, True, False, True):
            trace.record(site, taken)
        profile = ProfileData.from_trace(trace, local_bits=3)
        table = profile.local[site]
        # Fourth event saw history [N, T, T] newest-first; with the
        # newest outcome in bit 0 that is value 0b110 (bit0=N, bit1=T,
        # bit2=T), outcome taken.
        assert table.counts[0b110] == [0, 1]

    def test_initial_history_is_zero(self):
        trace = Trace()
        site = BranchSite("f", "b")
        trace.record(site, True)
        profile = ProfileData.from_trace(trace, local_bits=4)
        assert profile.local[site].counts == {0: [0, 1]}

    def test_totals(self):
        profile = ProfileData.from_trace(alternating_trace(10))
        site = BranchSite("f", "b")
        assert profile.totals[site] == (5, 5)
        assert profile.executions(site) == 10

    def test_alternating_trace_has_two_patterns(self):
        profile = ProfileData.from_trace(alternating_trace(100), local_bits=9)
        table = profile.local[BranchSite("f", "b")]
        # After warmup only 0b0101... and 0b1010... appear.
        assert len(table.counts) <= 10  # warmup patterns plus the two

    def test_global_history_spans_sites(self):
        trace = Trace()
        a, b = BranchSite("f", "a"), BranchSite("f", "b")
        trace.record(a, True)
        trace.record(b, False)  # global history when b executes: 0b1
        profile = ProfileData.from_trace(trace, global_bits=4)
        assert profile.global_tables[b].counts == {0b1: [1, 0]}

    def test_bias(self):
        profile = ProfileData.from_trace(alternating_trace(9))
        assert profile.bias(BranchSite("f", "b")) is True  # 5 taken, 4 not
        assert profile.bias(BranchSite("f", "ghost")) is None

    def test_fill_rate_decreases_with_depth(self):
        profile = ProfileData.from_trace(alternating_trace(500))
        assert profile.fill_rate(1) >= profile.fill_rate(5) >= profile.fill_rate(9)

    def test_fill_rate_alternating(self):
        profile = ProfileData.from_trace(alternating_trace(2000))
        # Two live patterns out of 512 (plus warmup noise).
        assert profile.fill_rate(9) < 0.05

    def test_events_counted(self):
        profile = ProfileData.from_trace(alternating_trace(42))
        assert profile.events == 42

    def test_invalid_depths_rejected(self):
        with pytest.raises(ValueError):
            ProfileData(local_bits=0)
        with pytest.raises(ValueError):
            ProfileData(global_bits=30)

    def test_unexecuted_interned_site_not_in_tables(self):
        trace = Trace()
        trace.site_id(BranchSite("f", "ghost"))
        trace.record(BranchSite("f", "real"), True)
        profile = ProfileData.from_trace(trace)
        assert BranchSite("f", "ghost") not in profile.totals
        assert BranchSite("f", "real") in profile.local


class TestFillRateNeverExecutedSites:
    def test_missing_sites_count_as_zero_used(self):
        profile = ProfileData.from_trace(alternating_trace(64))
        executed = BranchSite("f", "b")
        dead = BranchSite("f", "never_taken")
        solo = profile.fill_rate(1, sites=[executed])
        # A caller passing every static site (e.g. program.branch_sites())
        # must not blow up on branches that never executed — they dilute
        # the fill rate instead.
        diluted = profile.fill_rate(1, sites=[executed, dead])
        assert diluted == pytest.approx(solo / 2)

    def test_all_dead_sites_is_zero(self):
        profile = ProfileData.from_trace(alternating_trace(16))
        assert profile.fill_rate(3, sites=[BranchSite("g", "x")]) == 0.0

    def test_fill_rate_over_program_branch_sites(self):
        # End to end: the exact caller shape the bug report names.
        from repro.workloads import get_profile, get_program

        profile = get_profile("compress", 1)
        sites = get_program("compress").branch_sites()
        rate = profile.fill_rate(4, sites=sites)
        assert 0.0 < rate <= 1.0
