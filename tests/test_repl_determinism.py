"""Replicated programs must not depend on hash randomisation.

``Loop.body`` is a set; if the loop transform iterated it directly, the
block layout of the replicated program (and therefore every layout- and
i-cache-sensitive measurement) would vary from process to process with
``PYTHONHASHSEED``.  This drives the pipeline in subprocesses under
different hash seeds and requires identical rendered programs.
"""

import os
import subprocess
import sys

import pytest

SCRIPT = r"""
import sys
from repro.ir import parse_program
from repro.ir.printer import format_program
from repro.profiling import ProfileData, trace_program
from repro.replication import ReplicationPlanner, apply_replication

program = parse_program('''
func main(n) {
entry:
  i = move 0
  a = move 0
loop:
  br lt i, n ? b1 : done
b1:
  p = mod i, 2
  br eq p, 0 ? b2 : b3
b2:
  a = add a, 1
  jump b4
b3:
  a = add a, 2
  jump b4
b4:
  q = mod i, 3
  br eq q, 0 ? b5 : b6
b5:
  a = add a, 3
  jump b7
b6:
  a = add a, 4
  jump b7
b7:
  i = add i, 1
  jump loop
done:
  ret a
}
''')
trace, _ = trace_program(program, [300])
profile = ProfileData.from_trace(trace)
planner = ReplicationPlanner(program, profile, max_states=4)
selections = [
    (plan.site, plan.best_option(4).scored.machine)
    for plan in planner.improvable_plans()
]
report = apply_replication(program, selections, profile)
sys.stdout.write(format_program(report.program))
"""


@pytest.mark.parametrize("seeds", [("1", "2", "3", "4")])
def test_replicated_layout_is_hashseed_independent(seeds):
    outputs = []
    for seed in seeds:
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        result = subprocess.run(
            [sys.executable, "-c", SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0]  # the pipeline really produced a program
    assert all(output == outputs[0] for output in outputs)
