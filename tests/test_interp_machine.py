"""Interpreter tests: semantics of every instruction and fault."""

import pytest

from repro.interp import FuelExhausted, Machine, TrapError, run_program
from repro.ir import parse_program


def run_body(body: str, args=(), input_values=()):
    program = parse_program(f"func main() {{\nentry:\n{body}\n}}")
    return run_program(program, args, input_values)


class TestArithmetic:
    def test_add(self):
        assert run_body("  x = add 2, 3\n  ret x").value == 5

    def test_sub(self):
        assert run_body("  x = sub 2, 5\n  ret x").value == -3

    def test_mul(self):
        assert run_body("  x = mul -4, 3\n  ret x").value == -12

    def test_div_truncates_toward_zero(self):
        assert run_body("  x = div 7, 2\n  ret x").value == 3
        assert run_body("  x = div -7, 2\n  ret x").value == -3
        assert run_body("  x = div 7, -2\n  ret x").value == -3

    def test_mod_matches_c_semantics(self):
        assert run_body("  x = mod 7, 3\n  ret x").value == 1
        assert run_body("  x = mod -7, 3\n  ret x").value == -1

    def test_div_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_body("  x = div 1, 0\n  ret x")

    def test_mod_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_body("  x = mod 1, 0\n  ret x")

    def test_bitwise(self):
        assert run_body("  x = and 12, 10\n  ret x").value == 8
        assert run_body("  x = or 12, 10\n  ret x").value == 14
        assert run_body("  x = xor 12, 10\n  ret x").value == 6

    def test_shifts(self):
        assert run_body("  x = shl 3, 4\n  ret x").value == 48
        assert run_body("  x = shr 48, 4\n  ret x").value == 3

    def test_shift_amount_masked(self):
        # Shift counts are masked to 6 bits, so 64 behaves like 0.
        assert run_body("  x = shl 1, 64\n  ret x").value == 1

    def test_min_max(self):
        assert run_body("  x = min 3, -2\n  ret x").value == -2
        assert run_body("  x = max 3, -2\n  ret x").value == 3

    def test_unops(self):
        assert run_body("  x = neg 5\n  ret x").value == -5
        assert run_body("  x = not 0\n  ret x").value == -1
        assert run_body("  x = abs -9\n  ret x").value == 9

    def test_cmp_produces_boolean(self):
        assert run_body("  x = cmp lt 1, 2\n  ret x").value == 1
        assert run_body("  x = cmp gt 1, 2\n  ret x").value == 0


class TestMemory:
    def test_uninitialised_memory_reads_zero(self):
        assert run_body("  p = alloc 4\n  x = load p, 0\n  ret x").value == 0

    def test_store_load(self):
        assert (
            run_body(
                "  p = alloc 4\n  store p, 7, 1\n  x = load p, 1\n  ret x"
            ).value
            == 7
        )

    def test_alloc_regions_disjoint(self):
        result = run_body(
            "  p = alloc 2\n  q = alloc 2\n"
            "  store p, 1, 0\n  store q, 2, 0\n"
            "  a = load p, 0\n  b = load q, 0\n"
            "  x = add a, b\n  ret x"
        )
        assert result.value == 3

    def test_negative_alloc_traps(self):
        with pytest.raises(TrapError):
            run_body("  p = alloc -1\n  ret p")

    def test_peek_poke(self):
        program = parse_program("func main() {\nentry:\n  x = load 100, 0\n  ret x\n}")
        machine = Machine(program)
        machine.poke(100, 55)
        assert machine.run().value == 55
        assert machine.peek(100) == 55


class TestIO:
    def test_input_stream_ordered(self):
        result = run_body(
            "  a = in\n  b = in\n  out b\n  out a\n  ret a",
            input_values=[1, 2],
        )
        assert result.output == [2, 1]

    def test_input_exhausted_traps(self):
        with pytest.raises(TrapError, match="input exhausted"):
            run_body("  a = in\n  ret a")


class TestControlFlow:
    def test_branch_taken(self):
        program = parse_program(
            "func main(n) {\nentry:\n  br gt n, 0 ? pos : neg\n"
            "pos:\n  ret 1\nneg:\n  ret -1\n}"
        )
        assert run_program(program, [5]).value == 1
        assert run_program(program, [-5]).value == -1

    def test_branch_event_reported(self):
        events = []
        program = parse_program(
            "func main(n) {\nentry:\n  br gt n, 0 ? pos : neg\n"
            "pos:\n  ret 1\nneg:\n  ret -1\n}"
        )
        run_program(program, [5], on_branch=lambda s, t: events.append((str(s), t)))
        assert events == [("main:entry", True)]

    def test_branch_count(self):
        program = parse_program(
            "func main(n) {\nentry:\n  i = move 0\nhead:\n"
            "  br lt i, n ? body : done\nbody:\n  i = add i, 1\n  jump head\n"
            "done:\n  ret i\n}"
        )
        result = run_program(program, [10])
        assert result.branches == 11  # 10 taken + 1 final not-taken

    def test_fuel_limit(self):
        program = parse_program(
            "func main() {\nentry:\n  jump entry\n}"
        )
        with pytest.raises(FuelExhausted):
            run_program(program, max_steps=100)

    def test_wrong_arity_traps(self):
        program = parse_program("func main(a, b) {\nentry:\n  ret a\n}")
        with pytest.raises(TrapError):
            run_program(program, [1])

    def test_steps_counted(self):
        result = run_body("  x = const 1\n  y = const 2\n  ret x")
        assert result.steps == 3
