"""Correlated machine tests: path selection and prediction semantics."""

from repro.profiling import PatternTable
from repro.statemachines import (
    CorrelatedMachine,
    best_correlated_machine,
    correlated_machine_options,
)


def global_table(events, bits: int = 8) -> PatternTable:
    """events: outcomes of the target branch interleaved after a
    context-generating sequence; here we directly provide (history,
    outcome) pairs."""
    table = PatternTable(bits)
    for history, outcome in events:
        table.add(history, outcome)
    return table


def perfectly_correlated_table() -> PatternTable:
    # The branch copies the previous global outcome (history bit 0).
    events = []
    import random

    rng = random.Random(2)
    for _ in range(400):
        context = rng.getrandbits(8)
        events.append((context, context & 1))
    return global_table(events)


class TestBestCorrelatedMachine:
    def test_finds_single_bit_correlation(self):
        table = perfectly_correlated_table()
        scored = best_correlated_machine(table, 3)
        assert scored.mispredictions == 0
        patterns = {p for p in scored.machine.paths}
        # One path on each direction of the correlated bit (or one path
        # plus the catch-all covering the other).
        assert all(length == 1 for _, length in patterns)

    def test_stops_when_no_gain(self):
        table = global_table([(h, 1) for h in range(100)])
        scored = best_correlated_machine(table, 8)
        assert scored.machine.paths == ()
        assert scored.mispredictions == 0

    def test_path_length_bound(self):
        table = perfectly_correlated_table()
        scored = best_correlated_machine(table, 4, max_path_length=2)
        assert all(length <= 2 for _, length in scored.machine.paths)

    def test_two_bit_correlation_needs_longer_paths(self):
        # Outcome = XOR of the last two global outcomes: unpredictable
        # from any single bit, perfectly predictable from two.
        events = []
        import random

        rng = random.Random(4)
        for _ in range(600):
            context = rng.getrandbits(8)
            outcome = (context ^ (context >> 1)) & 1
            events.append((context, outcome))
        table = global_table(events)
        short = best_correlated_machine(table, 2, max_path_length=1)
        longer = best_correlated_machine(table, 5, max_path_length=2)
        assert longer.correct > short.correct
        assert longer.mispredictions == 0


class TestCorrelatedMachineSemantics:
    def machine(self) -> CorrelatedMachine:
        return CorrelatedMachine(
            paths=((0b1, 1), (0b10, 2)),
            predictions=(True, False),
            fallback=True,
        )

    def test_longest_match_wins(self):
        machine = self.machine()
        # History 0b...10: matches (0b10, 2)form (low bits 10) but not (1,1).
        assert machine.state_of(0b0110) == 1
        assert machine.predict(0b0110) is False

    def test_shorter_match(self):
        machine = self.machine()
        assert machine.state_of(0b011) == 0
        assert machine.predict(0b011) is True

    def test_fallback(self):
        machine = self.machine()
        assert machine.state_of(0b100) is None
        assert machine.predict(0b100) is True

    def test_n_states_includes_catch_all(self):
        assert self.machine().n_states == 3

    def test_describe(self):
        text = self.machine().describe()
        assert "3 states" in text
        assert "[*]" in text


class TestMachineOptions:
    def test_one_option_per_size(self):
        table = perfectly_correlated_table()
        options = correlated_machine_options(table, 6)
        assert len(options) == 6
        for index, scored in enumerate(options, start=1):
            assert scored.machine.n_states <= index

    def test_monotone_accuracy(self):
        table = perfectly_correlated_table()
        options = correlated_machine_options(table, 6)
        for earlier, later in zip(options, options[1:]):
            assert later.correct >= earlier.correct

    def test_first_option_is_catch_all_only(self):
        table = perfectly_correlated_table()
        options = correlated_machine_options(table, 4)
        assert options[0].machine.paths == ()
        assert options[0].correct == max(table.total())
