"""Perf-history tracker tests (``benchmarks/history.py``).

``benchmarks/`` is not a package — the module is loaded straight from
its file path, exactly the way the bench scripts themselves find it.
"""

import importlib.util
import json
import os

import pytest

_HISTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "history.py",
)


def _load_history_module():
    spec = importlib.util.spec_from_file_location("bench_history", _HISTORY_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


history = _load_history_module()


@pytest.fixture
def history_file(tmp_path):
    return str(tmp_path / "BENCH_history.jsonl")


def seed(history_file, suite, rows):
    for metrics in rows:
        history.append_row(suite, metrics, history_path=history_file)


class TestAppend:
    def test_rows_are_schema_versioned_jsonl(self, history_file):
        history.append_row(
            "eval",
            {"speedup": 3.0, "events_per_second": 1e6, "untracked": 42},
            history_path=history_file,
            context={"scale": 1},
        )
        with open(history_file) as stream:
            (line,) = stream.read().splitlines()
        row = json.loads(line)
        assert row["schema_version"] == history.SCHEMA_VERSION
        assert row["suite"] == "eval"
        assert row["metrics"] == {"speedup": 3.0, "events_per_second": 1e6}
        assert "untracked" not in row["metrics"]
        assert row["context"] == {"scale": 1}

    def test_append_is_append_only(self, history_file):
        seed(history_file, "eval", [{"speedup": 1.0}, {"speedup": 2.0}])
        rows = history.load_history(history_file)
        assert [r["metrics"]["speedup"] for r in rows] == [1.0, 2.0]

    def test_load_skips_corrupt_and_foreign_lines(self, history_file):
        seed(history_file, "eval", [{"speedup": 2.0}])
        with open(history_file, "a") as stream:
            stream.write("not json at all\n")
            stream.write(json.dumps({"schema_version": 999, "metrics": {}}) + "\n")
            stream.write(json.dumps({"schema_version": 1, "suite": "bogus", "metrics": {}}) + "\n")
        rows = history.load_history(history_file)
        assert len(rows) == 1


class TestCheck:
    def test_missing_file_and_first_run_never_fail(self, history_file):
        failures, notes = history.check_history(history_file)
        assert failures == [] and notes
        seed(history_file, "eval", [{"speedup": 3.0}])
        failures, notes = history.check_history(history_file)
        assert failures == []
        assert any("first recorded run" in note for note in notes)

    def test_flags_higher_is_better_regression(self, history_file):
        seed(
            history_file,
            "eval",
            [{"speedup": 3.0}, {"speedup": 3.1}, {"speedup": 2.9}, {"speedup": 1.5}],
        )
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert len(failures) == 1
        assert "eval.speedup" in failures[0]

    def test_flags_lower_is_better_regression(self, history_file):
        seed(
            history_file,
            "service",
            [{"p95_ms": 10.0, "req_per_s": 500}, {"p95_ms": 20.0, "req_per_s": 500}],
        )
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert any("service.p95_ms" in failure for failure in failures)
        assert not any("req_per_s" in failure for failure in failures)

    def test_within_threshold_passes(self, history_file):
        seed(history_file, "eval", [{"speedup": 3.0}, {"speedup": 2.5}])
        failures, notes = history.check_history(history_file, threshold=0.30)
        assert failures == []
        assert any("[ok]" in note for note in notes)

    def test_baseline_is_median_robust_to_one_lucky_run(self, history_file):
        # one 10x outlier among normal ~3x runs must not fail a normal run
        seed(
            history_file,
            "eval",
            [
                {"speedup": 3.0},
                {"speedup": 10.0},
                {"speedup": 3.1},
                {"speedup": 2.9},
                {"speedup": 3.0},
            ],
        )
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert failures == []

    def test_improvements_never_fail(self, history_file):
        seed(history_file, "eval", [{"speedup": 2.0}, {"speedup": 9.0}])
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert failures == []


class TestNonFiniteValues:
    def test_append_rejects_nan_and_inf(self, history_file):
        # One NaN row makes every later baseline median NaN, and NaN
        # comparisons are silently False — the gate would never fire
        # again.  Appending must refuse, and write nothing.
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                history.append_row(
                    "eval", {"speedup": bad}, history_path=history_file
                )
        assert not os.path.exists(history_file)

    def test_bools_are_not_measurements(self, history_file):
        row = history.append_row(
            "eval",
            {"speedup": True, "events_per_second": 1e6},
            history_path=history_file,
        )
        assert row["metrics"] == {"events_per_second": 1e6}

    def test_nan_baseline_rows_are_skipped_with_note(self, history_file):
        # A poisoned row predating the append-time guard (or written by
        # another tool) must not wedge the gate: it is dropped from the
        # baseline with a visible note, and real regressions still fail.
        seed(history_file, "eval", [{"speedup": 3.0}])
        poisoned = history.make_row("eval", {"speedup": 1.0})
        poisoned["metrics"]["speedup"] = float("nan")
        with open(history_file, "a") as stream:
            stream.write(json.dumps(poisoned) + "\n")
        seed(history_file, "eval", [{"speedup": 1.0}])
        failures, notes = history.check_history(history_file, threshold=0.30)
        assert any("non-finite" in note for note in notes)
        assert len(failures) == 1  # 1.0 vs baseline 3.0, NaN ignored

    def test_nan_latest_row_skips_comparison_with_note(self, history_file):
        seed(history_file, "eval", [{"speedup": 3.0}])
        poisoned = history.make_row("eval", {"speedup": 1.0})
        poisoned["metrics"]["speedup"] = float("nan")
        with open(history_file, "a") as stream:
            stream.write(json.dumps(poisoned) + "\n")
        failures, notes = history.check_history(history_file, threshold=0.30)
        assert failures == []
        assert any("comparison skipped" in note for note in notes)


class TestTimestampOrdering:
    def test_stale_row_appended_late_is_not_latest(self, history_file):
        # Histories merged across CI runs land out of file order; the
        # current run is the newest *timestamp*, whatever line it is on.
        seed(history_file, "eval", [{"speedup": 3.0}, {"speedup": 3.1}])
        rows = history.load_history(history_file)
        stale = history.make_row("eval", {"speedup": 0.5})
        stale["timestamp"] = rows[0]["timestamp"] - 100.0
        with open(history_file, "a") as stream:
            stream.write(json.dumps(stale) + "\n")
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert failures == []  # the 0.5 row is ancient history, not latest

    def test_regressed_newest_row_fails_wherever_it_sits(self, history_file):
        regressed = history.make_row("eval", {"speedup": 1.0})
        regressed["timestamp"] += 1_000.0
        with open(history_file, "w") as stream:
            stream.write(json.dumps(regressed) + "\n")
        seed(history_file, "eval", [{"speedup": 3.0}, {"speedup": 3.1}])
        failures, _ = history.check_history(history_file, threshold=0.30)
        assert len(failures) == 1
        assert "eval.speedup" in failures[0]


class TestCli:
    def test_append_then_check_via_main(self, history_file, tmp_path, capsys):
        report = tmp_path / "BENCH_eval.json"
        report.write_text(json.dumps({"speedup": 3.0, "events_per_second": 1e6}))
        assert (
            history.main(
                ["append", str(report), "--suite", "eval", "--history", history_file]
            )
            == 0
        )
        assert history.main(["check", "--history", history_file]) == 0

    def test_check_exit_code_on_regression(self, history_file):
        seed(history_file, "service", [{"req_per_s": 1000.0}, {"req_per_s": 100.0}])
        assert history.main(["check", "--history", history_file]) == 1
