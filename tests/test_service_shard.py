"""Consistent-hash sharding: the contract fleet mode stands on.

Three load-bearing properties of :mod:`repro.service.shard`:

* **balance** — N shards each own roughly 1/N of a large keyspace;
* **minimal movement** — growing N → N+1 moves only ~1/(N+1) of keys,
  and every moved key moves *to the new shard* (no other pair of
  shards exchanges keys, so warm caches survive a resize);
* **hash-seed independence** — the owner is a pure crc32 function of
  the key, so two worker processes launched with different
  ``PYTHONHASHSEED`` values (as fleet workers inevitably are) compute
  identical owners.  Proved by actually running interpreters with
  pinned seeds, the same way ``tests/test_repl_determinism.py`` does.
"""

import os
import subprocess
import sys

import pytest

from repro.service.shard import owner_shard, shard_counts, shard_key


def _keyspace(count: int) -> list:
    return [
        shard_key(f"bench-{i % 17}", scale=1 + i % 4, seed_offset=i)
        for i in range(count)
    ]


class TestOwnerShard:
    def test_single_worker_owns_everything(self):
        assert owner_shard("anything", 1) == 0
        assert owner_shard("anything", 0) == 0

    def test_owner_is_in_range_and_stable(self):
        for workers in (2, 3, 4, 8):
            for key in _keyspace(50):
                owner = owner_shard(key, workers)
                assert 0 <= owner < workers
                assert owner == owner_shard(key, workers)  # pure function

    def test_shard_key_includes_the_whole_triple(self):
        assert shard_key("a", 2, 3) == "a:2:3"
        # distinct triples must not collide into one shard key
        assert shard_key("a", 1, 23) != shard_key("a", 12, 3)


class TestBalance:
    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_keyspace_splits_roughly_evenly(self, workers):
        keys = _keyspace(4000)
        counts = shard_counts(keys, workers)
        expected = len(keys) / workers
        for count in counts:
            # crc32 scores are uniform enough for ±35% at 4000 keys;
            # a broken hash (everything on shard 0) fails by a mile.
            assert 0.65 * expected <= count <= 1.35 * expected, counts


class TestMinimalMovement:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_growing_the_fleet_moves_few_keys_and_only_to_the_new_shard(
        self, workers
    ):
        keys = _keyspace(4000)
        moved = 0
        for key in keys:
            before = owner_shard(key, workers)
            after = owner_shard(key, workers + 1)
            if before != after:
                moved += 1
                # rendezvous hashing: a key only moves when the NEW
                # shard out-scores its old owner
                assert after == workers, (key, before, after)
        expected_fraction = 1.0 / (workers + 1)
        fraction = moved / len(keys)
        assert fraction <= expected_fraction * 1.5, fraction
        assert fraction >= expected_fraction * 0.5, fraction


_OWNER_SCRIPT = """
from repro.service.shard import owner_shard, shard_key
keys = [shard_key(f"b{i}", 1 + i % 3, i) for i in range(200)]
print(",".join(str(owner_shard(k, 4)) for k in keys))
"""


class TestHashSeedIndependence:
    def _owners_with_seed(self, seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        result = subprocess.run(
            [sys.executable, "-c", _OWNER_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout.strip()

    def test_owners_identical_across_interpreter_hash_seeds(self):
        owners = {self._owners_with_seed(seed) for seed in ("0", "1", "31337")}
        assert len(owners) == 1, "owner assignment depends on PYTHONHASHSEED"
