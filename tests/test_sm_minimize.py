"""State-machine minimisation tests."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.profiling import PatternTable
from repro.statemachines import (
    MachineState,
    PredictionMachine,
    best_intra_machine,
    comb_machine,
    minimize_machine,
)


def table_from_outcomes(outcomes, bits: int = 9) -> PatternTable:
    table = PatternTable(bits)
    history = 0
    for taken in outcomes:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & ((1 << bits) - 1)
    return table


def test_alternator_already_minimal():
    scored = best_intra_machine(
        table_from_outcomes([i % 2 == 0 for i in range(200)]), 2
    )
    assert minimize_machine(scored.machine).n_states == 2


def test_oversized_comb_shrinks():
    # Trip count 2: a 5-state chain wastes its deep states.
    outcomes = []
    for _ in range(100):
        outcomes.extend([True, False])
    scored = comb_machine(table_from_outcomes(outcomes), 5, exit_on_taken=False)
    minimized = minimize_machine(scored.machine)
    assert minimized.n_states < scored.machine.n_states


def test_behaviour_preserved_on_training_pattern():
    outcomes = []
    for _ in range(100):
        outcomes.extend([True, True, False])
    scored = comb_machine(table_from_outcomes(outcomes), 6, exit_on_taken=False)
    minimized = minimize_machine(scored.machine)
    assert minimized.simulate(outcomes) == scored.machine.simulate(outcomes)


def test_idempotent():
    outcomes = [i % 3 != 0 for i in range(300)]
    scored = comb_machine(table_from_outcomes(outcomes), 6, exit_on_taken=False)
    once = minimize_machine(scored.machine)
    twice = minimize_machine(once)
    assert twice.n_states == once.n_states


def test_unreachable_states_dropped():
    # State 2 is unreachable from the initial state.
    machine = PredictionMachine(
        (
            MachineState("a", True, 0, 1),
            MachineState("b", False, 0, 1),
            MachineState("orphan", True, 2, 2),
        ),
        initial=0,
    )
    assert minimize_machine(machine).n_states == 2


def test_merged_state_names_recorded():
    machine = PredictionMachine(
        (
            MachineState("a", True, 0, 1),
            MachineState("b", True, 0, 1),  # identical to a
        ),
        initial=0,
    )
    minimized = minimize_machine(machine)
    assert minimized.n_states == 1
    assert "a" in minimized.states[0].name and "b" in minimized.states[0].name


@given(
    st.lists(st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 5)),
             min_size=1, max_size=6),
    st.lists(st.booleans(), max_size=60),
)
@settings(deadline=None, max_examples=150)
def test_minimization_preserves_behaviour(raw_states, outcomes):
    count = len(raw_states)
    states = tuple(
        MachineState(f"s{i}", pred, nt % count, t % count)
        for i, (pred, nt, t) in enumerate(raw_states)
    )
    machine = PredictionMachine(states, initial=0)
    minimized = minimize_machine(machine)
    assert minimized.n_states <= machine.n_states
    assert minimized.simulate(outcomes) == machine.simulate(outcomes)
