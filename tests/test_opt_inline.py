"""Function-inlining tests, including the correlation-recovery story."""

import pytest

from repro.interp import run_program
from repro.ir import BranchSite, IRError, parse_program, validate_program
from repro.opt import inline_all_calls, inline_call, recursive_functions
from repro.profiling import ProfileData, collect_path_tables, trace_program
from repro.replication import ReplicationPlanner

SIMPLE = """
func double(x) {
entry:
  y = mul x, 2
  ret y
}

func main(n) {
entry:
  a = call double(n)
  b = call double(a)
  out b
  ret b
}
"""


class TestInlineCall:
    def test_semantics_preserved(self):
        program = parse_program(SIMPLE)
        expected = run_program(program.copy(), [5])
        inline_call(program, "main", "entry", 0)
        validate_program(program)
        result = run_program(program, [5])
        assert result.value == expected.value == 20
        assert result.output == expected.output

    def test_inline_all(self):
        program = parse_program(SIMPLE)
        count = inline_all_calls(program)
        assert count == 2
        validate_program(program)
        assert run_program(program, [3]).value == 12
        # No calls remain in main.
        from repro.ir import Call

        for block in program.function("main"):
            assert not any(isinstance(i, Call) for i in block.instrs)

    def test_repeated_inlining_renames_uniquely(self):
        program = parse_program(SIMPLE)
        inline_all_calls(program)
        validate_program(program)  # would fail on register collisions

    def test_void_callee(self):
        program = parse_program(
            """
func emit(v) {
entry:
  out v
  ret
}

func main(n) {
entry:
  call emit(n)
  call emit(7)
  ret n
}
"""
        )
        inline_all_calls(program)
        validate_program(program)
        assert run_program(program, [3]).output == [3, 7]

    def test_callee_with_branches(self, recursive_sum):
        # sum() is recursive: must be refused.
        assert "sum" in recursive_functions(recursive_sum)
        with pytest.raises(IRError):
            inline_call(recursive_sum, "main", "entry", 0)
        assert inline_all_calls(recursive_sum) == 0

    def test_mutual_recursion_detected(self):
        program = parse_program(
            """
func ping(n) {
entry:
  r = call pong(n)
  ret r
}

func pong(n) {
entry:
  r = call ping(n)
  ret r
}

func main(n) {
entry:
  r = call ping(n)
  ret r
}
"""
        )
        assert recursive_functions(program) == {"ping", "pong"}

    def test_size_cap_respected(self):
        program = parse_program(SIMPLE)
        count = inline_all_calls(program, max_program_size=program.size())
        assert count == 0

    def test_not_a_call_rejected(self):
        program = parse_program(SIMPLE)
        with pytest.raises(IRError):
            inline_call(program, "double", "entry", 0)


class TestCorrelationRecovery:
    """Inlining turns *interprocedural* correlation into CFG paths.

    The callee's branch is fully determined by its argument, which the
    caller computes from its own alternating branch.  As a separate
    function, the callee branch starts every activation with empty
    frame-local history (not improvable); inlined into the caller, the
    correlation becomes an ordinary predecessor path.
    """

    PROGRAM = """
func kernel(mode) {
entry:
  br eq mode, 1 ? fancy : plain
fancy:
  ret 10
plain:
  ret 1
}

func main(n) {
entry:
  k = move 0
  acc = move 0
loop:
  br lt k, n ? body : finish
body:
  parity = mod k, 2
  br eq parity, 0 ? even : odd
even:
  x = call kernel(1)
  acc = add acc, x
  jump cont
odd:
  y = call kernel(0)
  acc = add acc, y
  jump cont
cont:
  k = add k, 1
  jump loop
finish:
  ret acc
}
"""

    def kernel_gain(self, program, branch_site, max_states=4):
        trace, _ = trace_program(program.copy(), [60])
        profile = ProfileData.from_trace(trace)
        profile.attach_path_tables(collect_path_tables(program, [60]))
        planner = ReplicationPlanner(program, profile, max_states)
        plan = planner.plans.get(branch_site)
        if plan is None:
            return None
        best = plan.best_option(max_states)
        if best is None:
            return 0.0
        return (best.correct - plan.profile_correct) / plan.executions

    def test_callee_branch_not_improvable_before(self):
        program = parse_program(self.PROGRAM)
        gain = self.kernel_gain(program, BranchSite("kernel", "entry"))
        assert gain == 0.0  # empty frame history: 50/50 forever

    def test_inlining_recovers_correlation(self):
        from repro.predictors import ProfilePredictor, evaluate

        original = parse_program(self.PROGRAM)
        inlined = parse_program(self.PROGRAM)
        inline_all_calls(inlined, callees={"kernel"})
        validate_program(inlined)
        assert (
            run_program(inlined.copy(), [20]).value
            == run_program(original.copy(), [20]).value
        )
        # Before: the shared kernel branch is a coin flip for profile
        # prediction.
        trace, _ = trace_program(original.copy(), [60])
        profile = ProfileData.from_trace(trace)
        before = evaluate(ProfilePredictor(profile), trace)
        kernel_before = before.per_site[BranchSite("kernel", "entry")]
        assert kernel_before.rate == pytest.approx(0.5, abs=0.05)
        # After: each inlined copy sees a constant mode — plain profile
        # prediction is now perfect on them.  (Inlining specialised the
        # branch the way code replication specialises loop copies.)
        trace2, _ = trace_program(inlined.copy(), [60])
        profile2 = ProfileData.from_trace(trace2)
        after = evaluate(ProfilePredictor(profile2), trace2)
        copies = [
            stats
            for site, stats in after.per_site.items()
            if site.block.startswith("entry$kernel")
        ]
        assert copies, "inlined kernel branches should execute"
        assert all(stats.mispredictions == 0 for stats in copies)
