"""Columnar batch-kernel parity and packed-direction boundary tests.

The batch engine's contract is *byte identity*: for every registered
predictor family, ``evaluate_many`` must produce exactly the results of
the sequential reference ``evaluate`` — same totals, same per-site
attribution — on any trace, on both the numpy kernels and the
pure-Python fallback (``REPRO_NO_NUMPY``).  Hypothesis drives random
traces through the full family zoo in both modes.

The second half pins the bit-unpack boundaries of the packed-direction
path: event counts straddling byte edges (0, 1, 7, 8, 9, 63, 64, 65)
must round-trip through the trace file format and expand to exactly
``n_events`` direction bytes, with the padding bits of the final packed
byte masked off.
"""

import os
from contextlib import contextmanager

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.ir import BranchSite
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    all_yeh_patt_variants,
    evaluate,
    evaluate_many,
    two_level_4k,
)
from repro.profiling import ProfileData, Trace, trace_from_bytes, trace_to_bytes
from repro.profiling.columns import get_numpy, unpack_bits


@contextmanager
def numpy_mode(disabled: bool):
    """Force (or release) the pure-Python fallback within the block.

    ``get_numpy`` consults ``REPRO_NO_NUMPY`` live, so flipping the
    environment variable is the sanctioned way to exercise the fallback
    kernels without uninstalling numpy.  The previous value is restored
    so the test never leaks mode into the rest of the session (the CI
    fallback leg sets the variable globally).
    """
    saved = os.environ.get("REPRO_NO_NUMPY")
    if disabled:
        os.environ["REPRO_NO_NUMPY"] = "1"
    else:
        os.environ.pop("REPRO_NO_NUMPY", None)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = saved


def family_predictors(profile):
    """One instance per registered predictor family/configuration.

    Statics (closed form), the dynamic counters, every Yeh/Patt scope
    combination, and the profile-driven semi-static machines — each
    routes through a different engine path or kernel.
    """
    return [
        AlwaysTaken(),
        AlwaysNotTaken(),
        LastDirection(),
        SaturatingCounter(1),
        SaturatingCounter(2),
        SaturatingCounter(3),
        two_level_4k(),
        *all_yeh_patt_variants(4).values(),
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        CorrelationPredictor(profile, 2),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    ]


def build_trace(events):
    trace = Trace()
    for site_index, taken in events:
        trace.record(BranchSite("f", f"b{site_index}"), taken)
    return trace


def assert_results_identical(reference, batch):
    assert len(reference) == len(batch)
    for a, b in zip(reference, batch):
        assert a.predictor == b.predictor
        assert a.events == b.events
        assert a.mispredictions == b.mispredictions
        assert a.per_site == b.per_site


events_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.booleans()), max_size=200
)


@given(events_strategy, st.booleans())
@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_kernels_match_sequential_evaluate(events, no_numpy):
    with numpy_mode(no_numpy):
        trace = build_trace(events)
        profile = ProfileData.from_trace(trace)
        reference = [
            evaluate(predictor, trace)
            for predictor in family_predictors(profile)
        ]
        batch = evaluate_many(family_predictors(profile), trace)
        assert_results_identical(reference, batch)


@given(events_strategy)
@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_numpy_and_fallback_kernels_agree(events):
    if get_numpy() is None:
        pytest.skip("numpy unavailable; only one mode to compare")
    trace_bytes = trace_to_bytes(build_trace(events))
    modes = []
    for disabled in (False, True):
        with numpy_mode(disabled):
            trace = trace_from_bytes(trace_bytes)
            profile = ProfileData.from_trace(trace)
            modes.append(
                evaluate_many(family_predictors(profile), trace)
            )
    assert_results_identical(*modes)


#: Counts straddling the packed-byte boundaries: empty, single bit,
#: either side of one byte, and either side of the eighth byte.
BOUNDARY_COUNTS = [0, 1, 7, 8, 9, 63, 64, 65]


def _boundary_bits(count):
    # Period-3 pattern: never aligns with the 8-bit packing, so a
    # byte-order or bit-order slip changes the expansion.
    return [(index % 3) == 1 for index in range(count)]


@pytest.mark.parametrize("count", BOUNDARY_COUNTS)
def test_unpack_bits_boundaries(count):
    bits = _boundary_bits(count)
    packed = bytearray((count + 7) // 8)
    for index, bit in enumerate(bits):
        if bit:
            packed[index // 8] |= 1 << (index % 8)
    if count % 8:
        # Garbage in the final byte's padding bits must be masked off.
        packed[-1] |= 0x80
    out = unpack_bits(bytes(packed), count)
    assert len(out) == count
    assert list(out) == [1 if bit else 0 for bit in bits]


@pytest.mark.parametrize("no_numpy", [False, True], ids=["numpy", "fallback"])
@pytest.mark.parametrize("count", BOUNDARY_COUNTS)
def test_packed_directions_roundtrip_at_boundaries(count, no_numpy):
    with numpy_mode(no_numpy):
        bits = _boundary_bits(count)
        trace = Trace()
        for index, taken in enumerate(bits):
            trace.record(BranchSite("f", f"b{index % 3}"), taken)
        loaded = trace_from_bytes(trace_to_bytes(trace))
        columns = loaded.columns()
        assert columns.n_events == count
        assert len(columns.directions) == count
        assert list(columns.directions) == [1 if bit else 0 for bit in bits]
        assert [taken for _, taken in loaded.events()] == bits
