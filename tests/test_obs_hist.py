"""Histogram, rate-window and Prometheus exposition tests.

The two load-bearing properties are proved with hypothesis:

* **merge exactness** — the merge of per-shard histograms equals the
  histogram of the concatenated stream (what makes worker-snapshot
  merging sound);
* **quantile error bound** — every quantile answer is within
  ``sqrt(GROWTH) - 1`` relative error of the exact nearest-rank value.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    GROWTH,
    Histogram,
    Observer,
    RateWindow,
    quantile_from_counts,
    render_prometheus,
    validate_exposition,
)
from repro.obs.hist import bucket_index, bucket_upper
from repro.obs.promtext import (
    ExpositionError,
    delta_bucket_counts,
    exposition_types,
    histogram_bucket_counts,
    metric_name,
    parse_exposition,
)

#: The documented quantile relative-error bound (≈ 4.9% for GROWTH=1.1).
REL_ERROR = math.sqrt(GROWTH) - 1

positive_values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def fill(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


class TestBucketing:
    def test_bucket_covers_its_value(self):
        for value in (1e-6, 0.5, 1.0, 1.1, 2.0, 123.456, 1e6):
            index = bucket_index(value)
            assert GROWTH**index < value * (1 + 1e-9)
            assert value <= bucket_upper(index) * (1 + 1e-9)

    def test_boundary_values_index_deterministically(self):
        for k in range(-20, 21):
            boundary = GROWTH**k
            assert bucket_index(boundary) == bucket_index(boundary)

    def test_zero_and_negative_go_to_zero_bucket(self):
        hist = fill([0.0, -1.5, 2.0])
        assert hist.zero == 2
        assert hist.count == 3
        assert hist.min == -1.5

    def test_nan_and_inf_are_ignored(self):
        hist = fill([float("nan"), float("inf"), 1.0])
        assert hist.count == 1


class TestQuantiles:
    def test_empty_histogram_answers_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_single_value(self):
        hist = fill([0.25])
        assert hist.quantile(0.5) == pytest.approx(0.25, rel=REL_ERROR)

    @given(st.lists(positive_values, min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_relative_error_bound(self, values):
        hist = fill(values)
        ordered = sorted(values)
        for q in (0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            exact = ordered[min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))]
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=REL_ERROR + 1e-9)

    def test_mean_is_exact(self):
        values = [0.1, 0.2, 0.3, 10.0]
        assert fill(values).mean == pytest.approx(sum(values) / len(values))


class TestMerge:
    @given(
        st.lists(
            st.lists(positive_values, min_size=0, max_size=50),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_merged_shards_equal_whole_stream(self, shards):
        merged = Histogram()
        for shard in shards:
            merged.merge(fill(shard))
        whole = fill([value for shard in shards for value in shard])
        assert merged == whole
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_tracks_extremes(self):
        a, b = fill([1.0, 5.0]), fill([0.1, 2.0])
        a.merge(b)
        assert a.min == 0.1 and a.max == 5.0 and a.count == 4

    def test_serialisation_round_trip(self):
        hist = fill([0.0, 0.001, 1.0, 3.7, 250.0])
        assert Histogram.from_dict(hist.to_dict()) == hist

    def test_copy_is_independent(self):
        hist = fill([1.0])
        clone = hist.copy()
        clone.observe(2.0)
        assert hist.count == 1 and clone.count == 2


class TestQuantileFromCounts:
    def test_matches_histogram_quantile(self):
        values = [0.002, 0.004, 0.01, 0.05, 0.05, 0.3, 1.2]
        hist = fill(values)
        pairs = []
        previous = 0
        for bound, cumulative in hist.cumulative_buckets():
            pairs.append((bound, cumulative - previous))
            previous = cumulative
        for q in (0.5, 0.95):
            assert quantile_from_counts(pairs, q) == pytest.approx(
                hist.quantile(q), rel=2 * REL_ERROR
            )

    def test_empty_counts_answer_zero(self):
        assert quantile_from_counts([], 0.5) == 0.0
        assert quantile_from_counts([(1.0, 0.0)], 0.5) == 0.0


class TestRateWindow:
    def test_rate_counts_recent_events(self):
        window = RateWindow(window=10.0)
        for t in (0.0, 0.5, 1.0, 1.5):
            window.mark(1, now=t)
        assert window.rate(now=2.0) == pytest.approx(4 / 2.0)

    def test_rate_decays_to_zero(self):
        window = RateWindow(window=5.0)
        window.mark(100, now=0.0)
        assert window.rate(now=1.0) > 0
        assert window.rate(now=100.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RateWindow(window=0)


class TestPrometheusExposition:
    def _observer(self):
        observer = Observer()
        observer.add("service.requests.healthz", 7)
        observer.set_gauge("service.queue.depth", 3)
        for value in (0.001, 0.003, 0.003, 0.02, 0.5):
            observer.observe("service.latency_seconds", value)
        observer.mark("service.requests", 5)
        return observer

    def render(self):
        observer = self._observer()
        return render_prometheus(observer.snapshot(), rates=observer.rates())

    def test_rendered_exposition_validates(self):
        parsed = validate_exposition(self.render())
        types = exposition_types(parsed)
        assert types["repro_service_requests_healthz"] == "counter"
        assert types["repro_service_queue_depth"] == "gauge"
        assert types["repro_service_latency_seconds"] == "histogram"
        assert types["repro_service_requests_per_second"] == "gauge"

    def test_histogram_schema(self):
        parsed = validate_exposition(self.render())
        buckets = parsed["repro_service_latency_seconds_bucket"]
        bounds = [float("inf") if l["le"] == "+Inf" else float(l["le"]) for l, _ in buckets]
        counts = [value for _, value in buckets]
        # strictly ascending bounds, non-decreasing cumulative counts
        assert bounds == sorted(bounds) and len(set(bounds)) == len(bounds)
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert math.isinf(bounds[-1])
        # +Inf bucket == _count; _sum matches the observations
        assert counts[-1] == parsed["repro_service_latency_seconds_count"][0][1] == 5
        assert parsed["repro_service_latency_seconds_sum"][0][1] == pytest.approx(0.527)

    def test_metric_name_sanitisation(self):
        assert metric_name("service.latency_seconds") == "repro_service_latency_seconds"
        assert metric_name("weird name/π") == "repro_weird_name__"

    def test_validate_rejects_garbage(self):
        with pytest.raises(ExpositionError):
            validate_exposition("this is { not exposition\n")

    def test_validate_rejects_histogram_without_inf_bucket(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="0.1"} 1\n'
            "repro_x_sum 0.05\n"
            "repro_x_count 1\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            validate_exposition(text)

    def test_validate_rejects_decreasing_cumulative_counts(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="0.1"} 5\n'
            'repro_x_bucket{le="0.2"} 3\n'
            'repro_x_bucket{le="+Inf"} 5\n'
            "repro_x_sum 0.5\n"
            "repro_x_count 5\n"
        )
        with pytest.raises(ExpositionError, match="decrease"):
            validate_exposition(text)

    def test_validate_rejects_untyped_samples(self):
        with pytest.raises(ExpositionError, match="TYPE"):
            validate_exposition("repro_mystery 5\n")

    def test_bucket_counts_and_delta(self):
        before = parse_exposition(self.render())
        observer = self._observer()
        for value in (0.003, 0.04):
            observer.observe("service.latency_seconds", value)
        after_text = render_prometheus(observer.snapshot(), rates=observer.rates())
        after = parse_exposition(after_text)
        delta = delta_bucket_counts(
            histogram_bucket_counts(before, "repro_service_latency_seconds"),
            histogram_bucket_counts(after, "repro_service_latency_seconds"),
        )
        assert sum(count for _, count in delta) == 2
        # the two new samples dominate the interval quantiles
        assert quantile_from_counts(delta, 0.99) == pytest.approx(0.04, rel=2 * REL_ERROR)

    def test_counter_histogram_name_collision_is_defused(self):
        observer = Observer()
        observer.observe("engine.scan_seconds", 0.1)
        observer.add("engine.scan.seconds", 4)  # sanitises identically
        parsed = validate_exposition(render_prometheus(observer.snapshot()))
        types = exposition_types(parsed)
        assert types["repro_engine_scan_seconds"] == "histogram"
        assert types["repro_engine_scan_seconds_"] == "counter"
