"""Unit tests for the service caching primitives (no sockets)."""

import threading
import time

import pytest

from repro.service.coalesce import (
    SOURCE_COALESCED,
    SOURCE_COMPUTED,
    SOURCE_LRU,
    ComputeCache,
    LRUCache,
    SingleFlight,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("k") == (False, None)
        cache.put("k", 42)
        assert cache.get("k") == (True, 42)

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(2)
        cache.put("k", None)
        assert cache.get("k") == (True, None)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (True, 1)  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_put_existing_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == (True, 10)
        assert cache.get("b") == (False, None)

    def test_capacity_validation_and_len(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        cache = LRUCache(3)
        for index in range(5):
            cache.put(index, index)
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0


class TestSingleFlight:
    def test_single_caller_is_leader(self):
        flight = SingleFlight()
        value, leader = flight.do("k", lambda: 7)
        assert (value, leader) == (7, True)
        assert flight.inflight() == 0

    def test_concurrent_identical_keys_compute_once(self):
        flight = SingleFlight()
        calls = []
        release = threading.Event()
        barrier = threading.Barrier(6)

        def compute():
            calls.append(1)
            release.wait(5)
            return "result"

        results = []

        def worker():
            barrier.wait(5)
            results.append(flight.do("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        # Let every follower latch on before the leader finishes.
        deadline = time.monotonic() + 5
        while flight.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(5)
        assert len(calls) == 1
        assert [value for value, _ in results] == ["result"] * 6
        assert sum(1 for _, leader in results if leader) == 1

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == (1, True)
        assert flight.do("b", lambda: 2) == (2, True)

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        release = threading.Event()
        barrier = threading.Barrier(3)
        outcomes = []

        def compute():
            release.wait(5)
            raise RuntimeError("boom")

        def worker():
            barrier.wait(5)
            try:
                flight.do("k", compute)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("error")

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5
        while flight.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(5)
        assert outcomes == ["error"] * 3
        # A failed flight must not wedge the key.
        assert flight.do("k", lambda: 5) == (5, True)


class TestComputeCache:
    def test_sources_lru_and_computed(self):
        cache = ComputeCache(4, "unit")
        value, source = cache.get("k", lambda: 11)
        assert (value, source) == (11, SOURCE_COMPUTED)
        value, source = cache.get("k", lambda: 99)  # must not recompute
        assert (value, source) == (11, SOURCE_LRU)

    def test_concurrent_misses_coalesce(self):
        cache = ComputeCache(4, "unit")
        calls = []
        release = threading.Event()
        barrier = threading.Barrier(5)
        sources = []

        def compute():
            calls.append(1)
            release.wait(5)
            return "v"

        def worker():
            barrier.wait(5)
            value, source = cache.get("k", compute)
            assert value == "v"
            sources.append(source)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        release.set()
        for thread in threads:
            thread.join(5)
        assert len(calls) == 1
        assert sources.count(SOURCE_COMPUTED) == 1
        assert sources.count(SOURCE_COALESCED) == 4
        # And the value is now resident: a late caller hits the LRU.
        assert cache.get("k", lambda: "other") == ("v", SOURCE_LRU)

    def test_counters_flow_to_obs(self):
        from repro.obs import OBS

        OBS.reset(prefix="service.cache.unitctr.")
        cache = ComputeCache(4, "unitctr")
        cache.get("k", lambda: 1)
        cache.get("k", lambda: 1)
        counters = OBS.counters("service.cache.unitctr.")
        assert counters["service.cache.unitctr.misses"] == 1
        assert counters["service.cache.unitctr.hits"] == 1
