"""Dynamic predictor tests: last-direction, saturating counters, two-level."""

import pytest

from repro.ir import BranchSite
from repro.predictors import (
    LastDirection,
    SaturatingCounter,
    TwoLevelConfig,
    TwoLevelPredictor,
    all_yeh_patt_variants,
    evaluate,
    two_level_4k,
)
from repro.profiling import Trace

SITE = BranchSite("f", "b")


def trace_of(bits) -> Trace:
    trace = Trace()
    for bit in bits:
        trace.record(SITE, bool(bit))
    return trace


class TestLastDirection:
    def test_tracks_last_outcome(self):
        predictor = LastDirection()
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is False
        predictor.update(SITE, True)
        assert predictor.predict(SITE) is True

    def test_alternating_is_worst_case(self):
        result = evaluate(LastDirection(), trace_of([1, 0] * 50))
        assert result.misprediction_rate > 0.9

    def test_constant_is_best_case(self):
        result = evaluate(LastDirection(initial=True), trace_of([1] * 50))
        assert result.mispredictions == 0

    def test_per_site_state(self):
        predictor = LastDirection()
        other = BranchSite("f", "c")
        predictor.update(SITE, False)
        predictor.update(other, True)
        assert predictor.predict(SITE) is False
        assert predictor.predict(other) is True

    def test_reset(self):
        predictor = LastDirection()
        predictor.update(SITE, False)
        predictor.reset()
        assert predictor.predict(SITE) is True


class TestSaturatingCounter:
    def test_two_bit_hysteresis(self):
        # One odd outcome in a run of takens should not flip a 2-bit
        # counter's prediction.
        predictor = SaturatingCounter(2)
        for _ in range(5):
            predictor.update(SITE, True)
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is True

    def test_one_bit_flips_immediately(self):
        predictor = SaturatingCounter(1)
        predictor.update(SITE, True)
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is False

    def test_saturation_bounds(self):
        predictor = SaturatingCounter(2)
        for _ in range(100):
            predictor.update(SITE, True)
        # Two not-takens from saturation must still predict taken once.
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is True
        predictor.update(SITE, False)
        assert predictor.predict(SITE) is False

    def test_biased_stream_low_misprediction(self):
        bits = ([1] * 9 + [0]) * 20
        result = evaluate(SaturatingCounter(2), trace_of(bits))
        assert result.misprediction_rate <= 0.2

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)

    def test_name_reflects_width(self):
        assert SaturatingCounter(3).name == "3-bit-counter"


class TestTwoLevel:
    def test_learns_alternation(self):
        result = evaluate(two_level_4k(), trace_of([1, 0] * 200))
        # After warmup the pattern table learns both histories.
        assert result.misprediction_rate < 0.1

    def test_learns_period_three(self):
        result = evaluate(two_level_4k(), trace_of([1, 1, 0] * 200))
        assert result.misprediction_rate < 0.1

    def test_beats_counter_on_patterned_stream(self):
        bits = [1, 1, 0, 0] * 150
        trace = trace_of(bits)
        two_level = evaluate(two_level_4k(), trace)
        counter = evaluate(SaturatingCounter(2), trace)
        assert two_level.misprediction_rate < counter.misprediction_rate

    def test_all_nine_variants(self):
        variants = all_yeh_patt_variants(4)
        assert set(variants) == {
            "GAg", "GAs", "GAp", "SAg", "SAs", "SAp", "PAg", "PAs", "PAp"
        }
        trace = trace_of([1, 0] * 100)
        for predictor in variants.values():
            result = evaluate(predictor, trace)
            assert result.misprediction_rate < 0.2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TwoLevelConfig(history_scope="cosmic")
        with pytest.raises(ValueError):
            TwoLevelConfig(history_bits=0)

    def test_cost_bits(self):
        config = TwoLevelConfig(
            history_scope="global", pattern_scope="global", history_bits=4
        )
        # 1 register x 4 bits + 16 counters x 2 bits = 36 bits.
        assert config.cost_bits() == 36

    def test_yeh_patt_naming(self):
        assert TwoLevelConfig("global", "peraddr", 4).yeh_patt_name == "GAp"
        assert TwoLevelConfig("peraddr", "set", 4).yeh_patt_name == "PAs"

    def test_reset_clears_learning(self):
        predictor = two_level_4k()
        evaluate(predictor, trace_of([0] * 100))
        predictor.reset()
        assert predictor.predict(SITE) is True  # back to weakly-taken
