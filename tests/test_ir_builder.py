"""Unit tests for the imperative builder API."""

import pytest

from repro.interp import run_program
from repro.ir import (
    Branch,
    Const,
    FunctionBuilder,
    IRError,
    Jump,
    ProgramBuilder,
    Return,
    validate_program,
)


class TestFunctionBuilder:
    def test_entry_block_created(self):
        fb = FunctionBuilder("f")
        assert fb.function.entry == "entry"

    def test_implicit_fallthrough_jump(self):
        fb = FunctionBuilder("f")
        fb.const(1)
        fb.label("next")
        fb.ret()
        function = fb.build()
        assert isinstance(function.block("entry").terminator, Jump)
        assert function.block("entry").terminator.target == "next"

    def test_build_terminates_final_block(self):
        fb = FunctionBuilder("f")
        fb.const(1)
        function = fb.build()
        assert isinstance(function.block("entry").terminator, Return)

    def test_fresh_registers_unique(self):
        fb = FunctionBuilder("f")
        registers = {fb.reg() for _ in range(50)}
        assert len(registers) == 50

    def test_emit_after_terminator_fails(self):
        fb = FunctionBuilder("f")
        fb.jump("entry")
        with pytest.raises(IRError):
            fb.emit(Const("x", 1))

    def test_double_terminate_fails(self):
        fb = FunctionBuilder("f")
        fb.ret()
        with pytest.raises(IRError):
            fb.ret()

    def test_emit_rejects_terminators(self):
        fb = FunctionBuilder("f")
        with pytest.raises(IRError):
            fb.emit(Jump("entry"))

    def test_named_destination(self):
        fb = FunctionBuilder("f")
        assert fb.const(5, "five") == "five"

    def test_branch_helper(self):
        fb = FunctionBuilder("f")
        fb.branch("lt", 1, 2, "entry", "entry", pointer=True)
        branch = fb.function.block("entry").terminator
        assert isinstance(branch, Branch)
        assert branch.pointer is True

    def test_void_call(self):
        pb = ProgramBuilder()
        callee = pb.function("noop")
        callee.ret()
        fb = pb.function("main")
        assert fb.call("noop", [], void=True) is None
        fb.ret(0)
        validate_program(pb.build())


class TestBuilderPrograms:
    def test_countdown_program_runs(self):
        pb = ProgramBuilder()
        fb = pb.function("main", ["n"])
        fb.move("n", "i")
        fb.move(0, "steps")
        fb.label("head")
        fb.branch("gt", "i", 0, "body", "done")
        fb.label("body")
        fb.sub("i", 1, "i")
        fb.add("steps", 1, "steps")
        fb.jump("head")
        fb.label("done")
        fb.ret("steps")
        program = pb.build()
        validate_program(program)
        assert run_program(program, [7]).value == 7

    def test_arithmetic_helpers(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        a = fb.const(10)
        b = fb.add(a, 5)
        c = fb.sub(b, 3)
        d = fb.mul(c, 2)
        e = fb.div(d, 4)
        f = fb.mod(e, 4)
        g = fb.shl(f, 2)
        h = fb.shr(g, 1)
        i = fb.bor(h, 1)
        j = fb.band(i, 7)
        k = fb.bxor(j, 2)
        fb.ret(k)
        result = run_program(pb.build())
        # 10+5=15, -3=12, *2=24, /4=6, %4=2, <<2=8, >>1=4, |1=5, &7=5, ^2=7
        assert result.value == 7

    def test_memory_helpers(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        buf = fb.alloc(4)
        fb.store(buf, 42, 2)
        loaded = fb.load(buf, 2)
        fb.ret(loaded)
        assert run_program(pb.build()).value == 42

    def test_io_helpers(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        x = fb.input()
        doubled = fb.mul(x, 2)
        fb.output(doubled)
        fb.ret(doubled)
        result = run_program(pb.build(), [], input_values=[21])
        assert result.output == [42]

    def test_cmp_and_unop(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        flag = fb.cmp("lt", 3, 5)
        neg = fb.unop("neg", flag)
        absolute = fb.unop("abs", neg)
        fb.ret(absolute)
        assert run_program(pb.build()).value == 1
