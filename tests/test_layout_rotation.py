"""Loop rotation tests."""

import pytest

from repro.interp import run_program
from repro.ir import parse_program, validate_program
from repro.layout import rotatable_loops, rotate_loop, rotate_program

SIMPLE_LOOP = """
func main(n) {
entry:
  i = move 0
  acc = move 0
head:
  br lt i, n ? body : exit
body:
  acc = add acc, i
  i = add i, 1
  jump head
exit:
  ret acc
}
"""


def test_detects_rotatable_loop():
    program = parse_program(SIMPLE_LOOP)
    assert rotatable_loops(program.main_function()) == ["head"]


def test_rotation_preserves_semantics():
    program = parse_program(SIMPLE_LOOP)
    expected = run_program(program.copy(), [25]).value
    assert rotate_program(program) == 1
    validate_program(program)
    assert run_program(program, [25]).value == expected


def test_rotation_removes_jumps():
    program = parse_program(SIMPLE_LOOP)
    before = run_program(program.copy(), [100]).steps
    rotate_program(program)
    after = run_program(program, [100]).steps
    assert after == before - 100  # one jump per iteration gone


def test_zero_trip_loop_still_correct():
    program = parse_program(SIMPLE_LOOP)
    rotate_program(program)
    assert run_program(program, [0]).value == 0


def test_bottom_test_is_backward_taken():
    from repro.ir import BranchSite
    from repro.predictors import backward_taken

    program = parse_program(SIMPLE_LOOP)
    rotate_program(program)
    predictor = backward_taken(program)
    # body's new test: taken target (body itself) is backward.
    assert predictor.predict(BranchSite("main", "body")) is True


def test_header_with_instructions_not_rotatable():
    program = parse_program(
        """
func main(n) {
entry:
  i = move 0
head:
  limit = add n, 0
  br lt i, "limit" ? body : exit
body:
  i = add i, 1
  jump head
exit:
  ret i
}
""".replace('"limit"', "limit")
    )
    assert rotatable_loops(program.main_function()) == []
    assert rotate_program(program) == 0


def test_conditional_backedge_not_rotatable(alternating_loop):
    # The fixture's `cont -> loop` back edge is a jump, but rotate it
    # and the second call finds nothing left.
    work = alternating_loop.copy()
    first = rotate_program(work)
    again = rotate_program(work)
    assert again == 0
    validate_program(work)
    assert run_program(work, [30]).value == run_program(
        alternating_loop.copy(), [30]
    ).value


def test_nested_loops_rotated(fixed_trip_loop):
    work = fixed_trip_loop.copy()
    converted = rotate_program(work)
    assert converted == 2  # inner and outer
    validate_program(work)
    assert run_program(work, [12]).value == run_program(
        fixed_trip_loop.copy(), [12]
    ).value


def test_rotate_unrotatable_returns_zero():
    program = parse_program(SIMPLE_LOOP)
    assert rotate_loop(program.main_function(), "exit") == 0
