"""Evaluation-engine tests: counters, per-site stats, ordering."""

import pytest

from repro.ir import BranchSite
from repro.predictors import (
    AlwaysTaken,
    EvaluationResult,
    LastDirection,
    Predictor,
    SiteStats,
    evaluate,
)
from repro.profiling import Trace

A = BranchSite("f", "a")
B = BranchSite("f", "b")


def mixed_trace() -> Trace:
    trace = Trace()
    for taken in (True, True, False):
        trace.record(A, taken)
    for taken in (False, False):
        trace.record(B, taken)
    return trace


def test_event_and_misprediction_totals():
    result = evaluate(AlwaysTaken(), mixed_trace())
    assert result.events == 5
    assert result.mispredictions == 3  # A once, B twice


def test_per_site_breakdown():
    result = evaluate(AlwaysTaken(), mixed_trace())
    assert result.per_site[A].executions == 3
    assert result.per_site[A].mispredictions == 1
    assert result.per_site[B].executions == 2
    assert result.per_site[B].mispredictions == 2


def test_per_site_rates():
    result = evaluate(AlwaysTaken(), mixed_trace())
    assert result.per_site[B].rate == 1.0
    assert result.per_site[A].rate == pytest.approx(1 / 3)


def test_accuracy_complements_rate():
    result = evaluate(AlwaysTaken(), mixed_trace())
    assert result.accuracy + result.misprediction_rate == pytest.approx(1.0)


def test_predictor_sees_outcomes_in_order():
    observed = []

    class Spy(Predictor):
        def __init__(self):
            super().__init__("spy")

        def predict(self, site):
            return True

        def update(self, site, taken):
            observed.append((site, taken))

    evaluate(Spy(), mixed_trace())
    assert observed == [(A, True), (A, True), (A, False), (B, False), (B, False)]


def test_predict_called_before_update():
    class Strict(Predictor):
        def __init__(self):
            super().__init__("strict")
            self.pending = False

        def predict(self, site):
            assert not self.pending
            self.pending = True
            return True

        def update(self, site, taken):
            assert self.pending
            self.pending = False

    evaluate(Strict(), mixed_trace())


def test_reset_called_once():
    class Counting(LastDirection):
        resets = 0

        def reset(self):
            Counting.resets += 1
            super().reset()

    predictor = Counting()
    evaluate(predictor, mixed_trace())
    evaluate(predictor, mixed_trace())
    assert Counting.resets == 2


def test_result_str():
    result = EvaluationResult("x", 100, 25, {})
    assert "25.00%" in str(result)


def test_site_stats_zero_executions():
    assert SiteStats().rate == 0.0
