"""Intra-loop machine search tests, including score/simulation agreement."""

from repro.profiling import PatternTable
from repro.statemachines import (
    best_intra_machine,
    greedy_intra_machine,
    node_counts,
)


def table_from_outcomes(outcomes, bits: int = 9) -> PatternTable:
    table = PatternTable(bits)
    history = 0
    mask = (1 << bits) - 1
    for taken in outcomes:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & mask
    return table


class TestBestIntraMachine:
    def test_alternating_two_states_suffice(self):
        outcomes = [i % 2 == 0 for i in range(500)]
        scored = best_intra_machine(table_from_outcomes(outcomes), 2)
        assert scored.machine.n_states == 2
        assert scored.misprediction_rate < 0.01

    def test_period_three_needs_more_states(self):
        outcomes = [(i % 3) != 2 for i in range(600)]  # T T N repeating
        two = best_intra_machine(table_from_outcomes(outcomes), 2)
        four = best_intra_machine(table_from_outcomes(outcomes), 4)
        assert four.correct > two.correct
        assert four.misprediction_rate < 0.01

    def test_biased_branch_stays_single_state(self):
        outcomes = [True] * 500
        scored = best_intra_machine(table_from_outcomes(outcomes), 8)
        assert scored.machine.n_states == 1
        assert scored.mispredictions == 0

    def test_score_matches_simulation(self):
        # The pattern-table score must equal an actual simulation run
        # (up to warmup effects smaller than the history depth).
        outcomes = [(i % 4) in (0, 1) for i in range(800)]
        table = table_from_outcomes(outcomes)
        scored = best_intra_machine(table, 4)
        simulated_correct, total = scored.machine.simulate(outcomes)
        assert total == scored.total
        assert abs(simulated_correct - scored.correct) <= table.bits

    def test_exact_states_flag(self):
        outcomes = [i % 2 == 0 for i in range(200)]
        scored = best_intra_machine(
            table_from_outcomes(outcomes), 4, exact_states=True
        )
        # Even when asked for exactly 4 states, extra states cannot hurt
        # the alternating branch.
        assert scored.misprediction_rate < 0.05

    def test_ties_prefer_fewer_states(self):
        outcomes = [i % 2 == 0 for i in range(400)]
        scored = best_intra_machine(table_from_outcomes(outcomes), 8)
        assert scored.machine.n_states <= 4

    def test_random_never_improves(self):
        import random

        rng = random.Random(11)
        outcomes = [rng.random() < 0.5 for _ in range(500)]
        table = table_from_outcomes(outcomes)
        scored = best_intra_machine(table, 4)
        profile_correct = max(table.total())
        # Machines may overfit the table slightly but the structure is
        # noise: the gain should be small.
        assert scored.correct - profile_correct < 80


class TestGreedyVsExhaustive:
    def test_greedy_never_beats_exhaustive(self):
        for period in (2, 3, 4, 5):
            outcomes = [(i % period) != 0 for i in range(600)]
            table = table_from_outcomes(outcomes)
            for states in (2, 4, 6):
                exhaustive = best_intra_machine(table, states)
                greedy = greedy_intra_machine(table, states)
                assert greedy.correct <= exhaustive.correct

    def test_greedy_finds_alternation(self):
        outcomes = [i % 2 == 0 for i in range(400)]
        scored = greedy_intra_machine(table_from_outcomes(outcomes), 2)
        assert scored.misprediction_rate < 0.01

    def test_greedy_machine_simulates_consistently(self):
        outcomes = [(i % 3) != 2 for i in range(600)]
        table = table_from_outcomes(outcomes)
        scored = greedy_intra_machine(table, 4)
        correct, total = scored.machine.simulate(outcomes)
        assert abs(correct - scored.correct) <= table.bits


class TestMachineStructure:
    def test_transitions_follow_history_semantics(self):
        outcomes = [(i % 4) in (0, 1) for i in range(400)]
        scored = best_intra_machine(table_from_outcomes(outcomes), 4)
        machine = scored.machine
        for state in machine.states:
            for bit, succ_index in ((0, state.on_not_taken), (1, state.on_taken)):
                succ = machine.states[succ_index]
                # The successor's pattern must be consistent with
                # "outcome bit then this state's bits".
                value, length = state.pattern
                extended = ((value << 1) | bit, length + 1)
                svalue, slength = succ.pattern
                assert slength <= length + 1
                assert (extended[0] & ((1 << slength) - 1)) == svalue
