"""Scoring tests: node counts, partition scores, longest-match groups."""

from repro.profiling import PatternTable
from repro.statemachines import (
    longest_match_groups,
    majority,
    node_counts,
    partition_score,
)


def table_from(entries) -> PatternTable:
    """entries: list of (pattern, taken) at 3-bit depth."""
    table = PatternTable(3)
    for pattern, taken in entries:
        table.add(pattern, taken)
    return table


class TestNodeCounts:
    def test_full_depth_preserved(self):
        table = table_from([(0b101, 1), (0b101, 0)])
        nodes = node_counts(table)
        assert nodes[(0b101, 3)] == (1, 1)

    def test_suffix_aggregation(self):
        table = table_from([(0b101, 1), (0b001, 0), (0b011, 1)])
        nodes = node_counts(table)
        # Patterns ending in bit 1: all three.
        assert nodes[(0b1, 1)] == (1, 2)
        # Patterns whose low two bits are 01: 0b101 and 0b001.
        assert nodes[(0b01, 2)] == (1, 1)

    def test_empty_pattern_is_total(self):
        table = table_from([(0, 1), (1, 1), (2, 0)])
        assert node_counts(table)[(0, 0)] == (1, 2)

    def test_totals_conserved_per_level(self):
        table = table_from([(i % 8, i % 2) for i in range(40)])
        nodes = node_counts(table)
        for length in range(0, 4):
            level_total = sum(
                c[0] + c[1] for (v, l), c in nodes.items() if l == length
            )
            assert level_total == 40


class TestPartitionScore:
    def test_two_leaf_score(self):
        # Alternating: pattern ...0 -> taken, ...1 -> not taken.
        table = table_from([(0b010, 1)] * 10 + [(0b101, 0)] * 10)
        score = partition_score(node_counts(table), [(0, 1), (1, 1)])
        assert score == 20

    def test_single_leaf_is_profile(self):
        table = table_from([(0, 1)] * 7 + [(1, 0)] * 3)
        score = partition_score(node_counts(table), [(0, 0)])
        assert score == 7

    def test_unseen_leaf_scores_zero(self):
        table = table_from([(0, 1)])
        score = partition_score(node_counts(table), [(1, 1)])
        assert score == 0


class TestLongestMatchGroups:
    def test_fallback_collects_unmatched(self):
        table = table_from([(0b000, 1), (0b111, 0)])
        groups, fallback = longest_match_groups(table, [(0b1, 1)])
        assert groups[0] == [1, 0]  # 0b111 (not taken) has low bit 1
        assert fallback == [0, 1]  # 0b000 (taken) matched nothing

    def test_longest_wins_over_shorter(self):
        table = table_from([(0b011, 1), (0b001, 0)])
        # Patterns: "1" matches both; "11" matches only 0b011.
        groups, fallback = longest_match_groups(
            table, [(0b1, 1), (0b11, 2)]
        )
        assert groups[1] == [0, 1]  # 0b011 went to the longer pattern
        assert groups[0] == [1, 0]  # 0b001 stayed with the shorter
        assert fallback == [0, 0]

    def test_counts_conserved(self):
        table = table_from([(i % 8, (i // 3) % 2) for i in range(50)])
        groups, fallback = longest_match_groups(
            table, [(0b1, 1), (0b10, 2), (0b011, 3)]
        )
        total = sum(g[0] + g[1] for g in groups) + fallback[0] + fallback[1]
        assert total == 50


class TestMajority:
    def test_taken_majority(self):
        assert majority((1, 5)) is True

    def test_not_taken_majority(self):
        assert majority((5, 1)) is False

    def test_tie_uses_default(self):
        assert majority((3, 3), default=True) is True
        assert majority((3, 3), default=False) is False
